#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"
#include "xml/tag_interner.h"

namespace twigm::xml {
namespace {

TEST(TagInternerTest, AssignsDenseStableIds) {
  TagInterner interner;
  EXPECT_EQ(interner.size(), 0u);
  const SymbolId a = interner.Intern("a");
  const SymbolId b = interner.Intern("b");
  const SymbolId c = interner.Intern("c");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(interner.size(), 3u);
  // Re-interning is idempotent and does not grow the dictionary.
  EXPECT_EQ(interner.Intern("b"), b);
  EXPECT_EQ(interner.Intern("a"), a);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(TagInternerTest, FindDoesNotIntern) {
  TagInterner interner;
  EXPECT_EQ(interner.Find("ghost"), kNoSymbol);
  EXPECT_EQ(interner.size(), 0u);
  const SymbolId id = interner.Intern("ghost");
  EXPECT_EQ(interner.Find("ghost"), id);
  EXPECT_EQ(interner.Find("other"), kNoSymbol);
}

TEST(TagInternerTest, NameRoundTrips) {
  TagInterner interner;
  const SymbolId id = interner.Intern("chapter");
  EXPECT_EQ(interner.name(id), "chapter");
}

TEST(TagInternerTest, InternCopiesTheBytes) {
  TagInterner interner;
  std::string volatile_name = "section";
  const SymbolId id = interner.Intern(volatile_name);
  // Clobber the source: the interner must have copied into its arena.
  volatile_name.assign("XXXXXXX");
  EXPECT_EQ(interner.name(id), "section");
  EXPECT_EQ(interner.Find("section"), id);
}

TEST(TagInternerTest, ViewsStayValidAcrossGrowth) {
  TagInterner interner;
  const SymbolId first = interner.Intern("first-symbol");
  const std::string_view early_view = interner.name(first);
  // Force many rehashes and arena chunks.
  std::vector<SymbolId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(interner.Intern("tag_" + std::to_string(i)));
  }
  EXPECT_EQ(interner.size(), 10001u);
  // The early view still points at live arena bytes.
  EXPECT_EQ(early_view, "first-symbol");
  EXPECT_EQ(interner.name(first), "first-symbol");
  // Every symbol is distinct and still resolvable.
  for (int i = 0; i < 10000; ++i) {
    const std::string name = "tag_" + std::to_string(i);
    EXPECT_EQ(interner.Find(name), ids[i]) << name;
    EXPECT_EQ(interner.name(ids[i]), name);
  }
}

TEST(TagInternerTest, DistinguishesPrefixes) {
  TagInterner interner;
  const SymbolId a = interner.Intern("ab");
  const SymbolId b = interner.Intern("abc");
  const SymbolId c = interner.Intern("a");
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.Find("ab"), a);
  EXPECT_EQ(interner.Find("abc"), b);
  EXPECT_EQ(interner.Find("a"), c);
}

// ---------------------------------------------------------------------------
// Chunk-split fuzz: the symbols a parser stamps into its TagTokens must not
// depend on how the input bytes were split across Feed() calls, even when a
// split lands mid-tag-name and the buffer compacts between chunks.

// Records "tag:symbol" per element event.
class SymbolRecorder : public SaxHandler {
 public:
  void OnStartElement(const TagToken& tag,
                      const std::vector<Attribute>&) override {
    log_ += "+" + std::string(tag.text) + ":" + std::to_string(tag.symbol) +
            " ";
  }
  void OnEndElement(const TagToken& tag) override {
    log_ += "-" + std::string(tag.text) + ":" + std::to_string(tag.symbol) +
            " ";
  }
  void OnCharacters(std::string_view) override {}
  void OnEndDocument() override { log_ += "."; }

  const std::string& log() const { return log_; }

 private:
  std::string log_;
};

std::string ParseInChunks(std::string_view doc, size_t chunk) {
  SymbolRecorder recorder;
  SaxParser parser(&recorder);
  for (size_t pos = 0; pos < doc.size(); pos += chunk) {
    const size_t len = std::min(chunk, doc.size() - pos);
    EXPECT_TRUE(parser.Consume({doc.substr(pos, len), false}).ok());
  }
  EXPECT_TRUE(parser.Consume({std::string_view(), true}).ok());
  return recorder.log();
}

TEST(TagInternerChunkFuzzTest, SymbolsIndependentOfChunking) {
  const std::string doc =
      "<catalog><book id=\"1\"><title>T&amp;A</title><author>x</author>"
      "<book id=\"2\"><title><![CDATA[raw <stuff>]]></title></book></book>"
      "<!-- note --><misc/><longtagname attr='v'>text</longtagname>"
      "</catalog>";
  const std::string whole = ParseInChunks(doc, doc.size());
  // Every chunk size from 1 byte up, so each boundary eventually lands
  // inside every construct (tag names, attributes, CDATA, comment).
  for (size_t chunk = 1; chunk <= 17; ++chunk) {
    EXPECT_EQ(ParseInChunks(doc, chunk), whole) << "chunk=" << chunk;
  }
}

TEST(TagInternerChunkFuzzTest, SplitAtEveryPosition) {
  const std::string doc = "<aa><bb x=\"1\"/><aa><cc>t</cc></aa></aa>";
  const std::string whole = ParseInChunks(doc, doc.size());
  for (size_t split = 1; split < doc.size(); ++split) {
    SymbolRecorder recorder;
    SaxParser parser(&recorder);
    ASSERT_TRUE(parser.Consume({std::string_view(doc).substr(0, split), false}).ok());
    ASSERT_TRUE(parser.Consume({std::string_view(doc).substr(split), false}).ok());
    ASSERT_TRUE(parser.Consume({std::string_view(), true}).ok());
    EXPECT_EQ(recorder.log(), whole) << "split=" << split;
  }
}

TEST(TagInternerChunkFuzzTest, ResetKeepsSymbolsStable) {
  SymbolRecorder recorder;
  SaxParser parser(&recorder);
  ASSERT_TRUE(parser.ParseAll("<a><b/></a>").ok());
  const SymbolId a = parser.interner()->Find("a");
  const SymbolId b = parser.interner()->Find("b");
  ASSERT_NE(a, kNoSymbol);
  ASSERT_NE(b, kNoSymbol);
  parser.Reset();
  // Second document reuses the dictionary: same names, same symbols.
  ASSERT_TRUE(parser.ParseAll("<b><a/><c/></b>").ok());
  EXPECT_EQ(parser.interner()->Find("a"), a);
  EXPECT_EQ(parser.interner()->Find("b"), b);
  EXPECT_NE(parser.interner()->Find("c"), kNoSymbol);
}

// ---------------------------------------------------------------------------
// Serialize/Load: the persistence path of the structural index. A loaded
// dictionary must reproduce the exact SymbolId for every name, no matter
// how the original document was chunked when the symbols were first
// interned.

TEST(TagInternerPersistTest, SerializeLoadRoundTrip) {
  TagInterner original;
  const SymbolId a = original.Intern("alpha");
  const SymbolId b = original.Intern("b");
  const SymbolId c = original.Intern("a-rather-longer-tag-name");
  std::string bytes;
  original.Serialize(&bytes);

  TagInterner loaded;
  ASSERT_TRUE(loaded.Load(bytes).ok());
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.Find("alpha"), a);
  EXPECT_EQ(loaded.Find("b"), b);
  EXPECT_EQ(loaded.Find("a-rather-longer-tag-name"), c);
  EXPECT_EQ(loaded.name(a), "alpha");
  EXPECT_EQ(loaded.name(b), "b");
  EXPECT_EQ(loaded.Find("never-seen"), kNoSymbol);
}

TEST(TagInternerPersistTest, EmptyDictionaryRoundTrips) {
  TagInterner original;
  std::string bytes;
  original.Serialize(&bytes);
  TagInterner loaded;
  ASSERT_TRUE(loaded.Load(bytes).ok());
  EXPECT_EQ(loaded.size(), 0u);
}

TEST(TagInternerPersistTest, RoundTripSurvivesManySymbols) {
  TagInterner original;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(original.Intern("tag_" + std::to_string(i)));
  }
  std::string bytes;
  original.Serialize(&bytes);
  TagInterner loaded;
  ASSERT_TRUE(loaded.Load(bytes).ok());
  ASSERT_EQ(loaded.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const std::string name = "tag_" + std::to_string(i);
    ASSERT_EQ(loaded.Find(name), ids[i]) << name;
  }
}

TEST(TagInternerPersistTest, LoadRejectsTruncation) {
  TagInterner original;
  original.Intern("alpha");
  original.Intern("beta");
  std::string bytes;
  original.Serialize(&bytes);
  for (size_t len = 0; len < bytes.size(); ++len) {
    TagInterner loaded;
    EXPECT_FALSE(loaded.Load(bytes.substr(0, len)).ok()) << "len=" << len;
  }
}

TEST(TagInternerPersistTest, LoadRejectsTrailingGarbage) {
  TagInterner original;
  original.Intern("alpha");
  std::string bytes;
  original.Serialize(&bytes);
  bytes.push_back('x');
  TagInterner loaded;
  EXPECT_FALSE(loaded.Load(bytes).ok());
}

TEST(TagInternerPersistTest, LoadRequiresEmptyInterner) {
  TagInterner original;
  original.Intern("alpha");
  std::string bytes;
  original.Serialize(&bytes);
  TagInterner occupied;
  occupied.Intern("resident");
  EXPECT_FALSE(occupied.Load(bytes).ok());
}

// Fuzz leg: serialize the dictionary a chunk-split parse produced, load it
// into a fresh parser, re-ingest the same document under a different
// chunking, and require every event to carry the original symbol.
TEST(TagInternerPersistTest, ReingestAfterLoadKeepsSymbolsStable) {
  const std::string doc =
      "<catalog><book id=\"1\"><title>T&amp;A</title><author>x</author>"
      "<book id=\"2\"><title><![CDATA[raw <stuff>]]></title></book></book>"
      "<!-- note --><misc/><longtagname attr='v'>text</longtagname>"
      "</catalog>";
  for (size_t first_chunk = 1; first_chunk <= 13; ++first_chunk) {
    // First ingest, chunked at `first_chunk` bytes.
    SymbolRecorder recorder;
    SaxParser parser(&recorder);
    for (size_t pos = 0; pos < doc.size(); pos += first_chunk) {
      const size_t len = std::min(first_chunk, doc.size() - pos);
      ASSERT_TRUE(parser.Consume({std::string_view(doc).substr(pos, len),
                                  false}).ok());
    }
    ASSERT_TRUE(parser.Consume({std::string_view(), true}).ok());
    std::string bytes;
    parser.interner()->Serialize(&bytes);

    // Re-ingest under every other chunking with the loaded dictionary: the
    // event log (tag:symbol pairs) must be identical.
    for (size_t chunk = 1; chunk <= 13; chunk += 3) {
      SymbolRecorder recheck;
      SaxParser reparser(&recheck);
      ASSERT_TRUE(reparser.interner()->Load(bytes).ok());
      for (size_t pos = 0; pos < doc.size(); pos += chunk) {
        const size_t len = std::min(chunk, doc.size() - pos);
        ASSERT_TRUE(reparser.Consume({std::string_view(doc).substr(pos, len),
                                      false}).ok());
      }
      ASSERT_TRUE(reparser.Consume({std::string_view(), true}).ok());
      ASSERT_EQ(recheck.log(), recorder.log())
          << "first_chunk=" << first_chunk << " chunk=" << chunk;
    }
  }
}

TEST(TagInternerChunkFuzzTest, InternTagsOffEmitsNoSymbol) {
  SaxParserOptions options;
  options.intern_tags = false;
  class Check : public SaxHandler {
   public:
    void OnStartElement(const TagToken& tag,
                        const std::vector<Attribute>&) override {
      EXPECT_EQ(tag.symbol, kNoSymbol);
    }
    void OnEndElement(const TagToken& tag) override {
      EXPECT_EQ(tag.symbol, kNoSymbol);
    }
    void OnCharacters(std::string_view) override {}
    void OnEndDocument() override {}
  };
  Check check;
  SaxParser parser(&check, options);
  EXPECT_TRUE(parser.ParseAll("<a><b>t</b></a>").ok());
}

}  // namespace
}  // namespace twigm::xml
