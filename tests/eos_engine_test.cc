// Tests for the XAOS-style end-of-stream engine: correct results, blocking
// emission (nothing before EndDocument), and full-document buffering.

#include "baselines/eos_engine.h"

#include <algorithm>
#include <string>

#include "core/evaluator.h"
#include "gtest/gtest.h"
#include "xml/sax_parser.h"

namespace twigm {
namespace {

using baselines::EosEngine;
using core::VectorResultSink;

struct EosRun {
  std::vector<xml::NodeId> ids;
  baselines::EosEngineStats stats;
};

EosRun RunEos(std::string_view query, std::string_view doc) {
  VectorResultSink sink;
  auto engine = EosEngine::Create(query, &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  EXPECT_TRUE(parser.ParseAll(doc).ok());
  EXPECT_TRUE(engine.value()->status().ok());
  EosRun run;
  run.ids = sink.TakeIds();
  std::sort(run.ids.begin(), run.ids.end());
  run.stats = engine.value()->stats();
  return run;
}

TEST(EosEngineTest, MatchesTwigMResults) {
  const std::string doc =
      "<a><b x=\"1\"><c>t</c></b><b><c/></b><d/></a>";
  for (const char* query :
       {"//b", "//b[c]", "//a[d]//c", "//b[@x]/c", "//b[c=\"t\"]",
        "//*[c]"}) {
    Result<std::vector<xml::NodeId>> expected =
        core::EvaluateToIds(query, doc);
    ASSERT_TRUE(expected.ok());
    std::vector<xml::NodeId> want = std::move(expected).value();
    std::sort(want.begin(), want.end());
    EXPECT_EQ(RunEos(query, doc).ids, want) << query;
  }
}

TEST(EosEngineTest, EmitsNothingBeforeEndOfStream) {
  VectorResultSink sink;
  auto engine = EosEngine::Create("//b", &sink);
  ASSERT_TRUE(engine.ok());
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  ASSERT_TRUE(parser.Consume({"<a><b/><b/><b/>", false}).ok());
  EXPECT_TRUE(sink.ids().empty());  // blocking output
  ASSERT_TRUE(parser.Consume({"</a>", false}).ok());
  ASSERT_TRUE(parser.Consume({std::string_view(), true}).ok());
  EXPECT_EQ(sink.ids().size(), 3u);
}

TEST(EosEngineTest, BuffersWholeDocument) {
  std::string doc = "<r>";
  for (int i = 0; i < 1000; ++i) doc += "<x>text</x>";
  doc += "</r>";
  const EosRun run = RunEos("//x", doc);
  EXPECT_EQ(run.ids.size(), 1000u);
  EXPECT_EQ(run.stats.buffered_nodes, 1001u);
  // The matching structure costs more than the engine's result count —
  // this is the contrast with TwigM's constant state.
  EXPECT_GT(run.stats.buffered_bytes, 1000u * sizeof(xml::DomNode));
}

TEST(EosEngineTest, BadQueryFailsAtCreate) {
  VectorResultSink sink;
  auto engine = EosEngine::Create("b[", &sink);
  ASSERT_FALSE(engine.ok());
}

TEST(EosEngineTest, ResetClearsBuffer) {
  VectorResultSink sink;
  auto engine = EosEngine::Create("//b", &sink);
  ASSERT_TRUE(engine.ok());
  {
    xml::EventDriver driver(engine.value().get());
    xml::SaxParser parser(&driver);
    ASSERT_TRUE(parser.ParseAll("<a><b/></a>").ok());
  }
  engine.value()->Reset();
  EXPECT_EQ(engine.value()->stats().results, 0u);
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  ASSERT_TRUE(parser.ParseAll("<a><b/><b/></a>").ok());
  EXPECT_EQ(engine.value()->stats().results, 2u);
  EXPECT_EQ(sink.ids().size(), 3u);
}

}  // namespace
}  // namespace twigm
