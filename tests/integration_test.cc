// End-to-end integration: the full Figure 6 query sets over (small
// instances of) the paper's three datasets, every streaming engine
// cross-checked against the DOM oracle — the experiment pipeline itself,
// run as a test.

#include <algorithm>
#include <string>

#include "baselines/dom_eval.h"
#include "baselines/naive_enum.h"
#include "core/evaluator.h"
#include "data/book.h"
#include "data/datasets.h"
#include "data/protein.h"
#include "data/xmark.h"
#include "gtest/gtest.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"

namespace twigm {
namespace {

std::vector<xml::NodeId> OracleIds(const std::string& query,
                                   const xml::DomDocument& dom) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  EXPECT_TRUE(tree.ok()) << query;
  Result<std::vector<xml::NodeId>> ids =
      baselines::EvaluateOnDom(tree.value(), dom);
  EXPECT_TRUE(ids.ok());
  return ids.ok() ? std::move(ids).value() : std::vector<xml::NodeId>{};
}

void CheckDataset(const std::string& doc,
                  const std::vector<data::QuerySpec>& queries) {
  Result<xml::DomDocument> dom = xml::DomDocument::Parse(doc);
  ASSERT_TRUE(dom.ok());
  uint64_t total = 0;
  for (const data::QuerySpec& spec : queries) {
    const std::vector<xml::NodeId> expected = OracleIds(spec.text, dom.value());
    total += expected.size();

    // TwigM (forced) must agree on every query.
    core::EvaluatorOptions twig;
    twig.engine = core::EngineKind::kTwigM;
    Result<std::vector<xml::NodeId>> got =
        core::EvaluateToIds(spec.text, doc, twig);
    ASSERT_TRUE(got.ok()) << spec.name;
    std::vector<xml::NodeId> ids = std::move(got).value();
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, expected) << spec.name << ": " << spec.text;

    // Auto engine selection must agree too.
    Result<std::vector<xml::NodeId>> auto_got =
        core::EvaluateToIds(spec.text, doc);
    ASSERT_TRUE(auto_got.ok()) << spec.name;
    std::vector<xml::NodeId> auto_ids = std::move(auto_got).value();
    std::sort(auto_ids.begin(), auto_ids.end());
    EXPECT_EQ(auto_ids, expected) << spec.name;

    // The enumeration baseline, where it supports the query.
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(spec.text);
    ASSERT_TRUE(tree.ok());
    core::VectorResultSink naive_sink;
    baselines::NaiveEnumOptions naive_options;
    naive_options.max_live_matches = 200'000;
    naive_options.max_work = 20'000'000;  // abort instead of thrashing
    auto naive = baselines::NaiveEnumEngine::Create(tree.value(), &naive_sink,
                                                    naive_options);
    if (naive.ok()) {
      xml::EventDriver driver(naive.value().get());
      xml::SaxParser parser(&driver);
      ASSERT_TRUE(parser.ParseAll(doc).ok());
      if (naive.value()->status().ok()) {
        std::vector<xml::NodeId> naive_ids = naive_sink.TakeIds();
        std::sort(naive_ids.begin(), naive_ids.end());
        EXPECT_EQ(naive_ids, expected) << "NaiveEnum " << spec.name;
      }
    }
  }
  // The query sets must actually produce results on their datasets.
  EXPECT_GT(total, 0u);
}

TEST(IntegrationTest, BookQueriesAllEnginesAgree) {
  data::BookOptions options;
  options.seed = 77;
  options.min_bytes = 150 * 1024;
  Result<std::string> doc = data::GenerateBook(options);
  ASSERT_TRUE(doc.ok());
  CheckDataset(doc.value(), data::BookQueries());
}

TEST(IntegrationTest, ProteinQueriesAllEnginesAgree) {
  data::ProteinOptions options;
  options.seed = 77;
  options.entries = 300;
  Result<std::string> doc = data::GenerateProtein(options);
  ASSERT_TRUE(doc.ok());
  CheckDataset(doc.value(), data::ProteinQueries());
}

TEST(IntegrationTest, AuctionQueriesAllEnginesAgree) {
  data::XmarkOptions options;
  options.seed = 77;
  options.people = 60;
  Result<std::string> doc = data::GenerateXmark(options);
  ASSERT_TRUE(doc.ok());
  CheckDataset(doc.value(), data::AuctionQueries());
}

TEST(IntegrationTest, DuplicatedBookScalesResultsLinearly) {
  // The Fig. 9/10 workload invariant: k identical copies => k × results.
  // Compare 2 vs 3 copies: both use the <collection> wrapper, so per-copy
  // content is byte-identical and results scale exactly.
  data::BookOptions base;
  base.seed = 13;
  base.copies = 2;
  data::BookOptions triple = base;
  triple.copies = 3;
  Result<std::string> doc2 = data::GenerateBook(base);
  Result<std::string> doc3 = data::GenerateBook(triple);
  ASSERT_TRUE(doc2.ok());
  ASSERT_TRUE(doc3.ok());
  for (const data::QuerySpec& spec : data::BookQueries()) {
    Result<std::vector<xml::NodeId>> r2 =
        core::EvaluateToIds(spec.text, doc2.value());
    Result<std::vector<xml::NodeId>> r3 =
        core::EvaluateToIds(spec.text, doc3.value());
    ASSERT_TRUE(r2.ok());
    ASSERT_TRUE(r3.ok());
    ASSERT_EQ(r2.value().size() % 2, 0u) << spec.name;
    EXPECT_EQ(r3.value().size(), 3 * (r2.value().size() / 2)) << spec.name;
  }
}

TEST(IntegrationTest, StreamingMemoryIndependentOfDataSize) {
  // Same query, 1x vs 4x data: TwigM peak entries must not grow with size
  // (the Fig. 10 claim), modulo candidate buffering which scales with the
  // largest *single* undecided region, identical across copies.
  // 2 vs 8 identical copies (both <collection>-wrapped): 4x the data.
  data::BookOptions small;
  small.seed = 5;
  small.copies = 2;
  data::BookOptions big = small;
  big.copies = 8;
  Result<std::string> doc1 = data::GenerateBook(small);
  Result<std::string> doc4 = data::GenerateBook(big);
  ASSERT_TRUE(doc1.ok());
  ASSERT_TRUE(doc4.ok());

  auto peak_for = [&](const std::string& doc) {
    core::VectorResultSink sink;
    core::EvaluatorOptions options;
    options.engine = core::EngineKind::kTwigM;
    auto proc = core::XPathStreamProcessor::Create(
        "//section[title]//figure", &sink, options);
    EXPECT_TRUE(proc.ok());
    EXPECT_TRUE(proc.value()->Consume({doc, false}).ok());
    EXPECT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
    return proc.value()->stats().peak_state_bytes;
  };
  const uint64_t peak1 = peak_for(doc1.value());
  const uint64_t peak4 = peak_for(doc4.value());
  EXPECT_EQ(peak4, peak1);  // flat, not 4x: copies are identical
}

}  // namespace
}  // namespace twigm
