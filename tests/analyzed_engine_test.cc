// Differential tests for AnalyzedEngine: on random DTD-generated documents
// the analyzed-and-pruned engine (both backends) must emit exactly the same
// (query, id) sets as an unanalyzed MultiQueryProcessor over the original
// query texts — the soundness proof-by-execution for all three analyzer
// passes plus the level-bound pruning.

#include "filter/analyzed_engine.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/multi_query.h"
#include "data/book.h"
#include "dtd/dtd_generator.h"
#include "dtd/dtd_parser.h"
#include "gtest/gtest.h"

namespace twigm {
namespace {

using analysis::DtdStructure;
using core::MultiQueryProcessor;
using core::VectorMultiQuerySink;
using filter::AnalyzedEngine;

// The Book DTD plus the synthetic <collection> wrapper the generator uses,
// so multi-book documents are valid w.r.t. the analyzed DTD.
std::string CollectionBookDtd() {
  return std::string("<!ELEMENT collection (book*)>\n") + data::kBookDtd;
}

// A workload exercising every pass: satisfiable queries of all shapes,
// statically unsatisfiable ones, equivalent pairs, and redundant branches.
std::vector<std::string> Workload() {
  return {
      "//section/title",                  // plain
      "/collection/book/title",           // exact-depth chain
      "//figure[image]/title",            // predicate
      "//section[figure][p]",             // twig
      "//section[p][figure]",             // equivalent to the previous
      "//book[author]//image",            // descendant below predicate
      "//section[title][title]",          // redundant branch
      "//section[title]/title",           // continuation-implied branch
      "//section/book",                   // unsat: book never nests in section
      "//title/author",                   // unsat: title is a leaf
      "//figure[@width]/image",           // attribute predicate
      "//p[x]",                           // unsat: p has no element children
      "//section//figure/image",          // deep
      "/collection/book/title",           // duplicate of #1
  };
}

std::vector<std::vector<xml::NodeId>> Collect(const VectorMultiQuerySink& sink,
                                              size_t n) {
  std::vector<std::vector<xml::NodeId>> out(n);
  for (const auto& item : sink.items()) {
    out[item.query_index].push_back(item.id);
  }
  for (auto& ids : out) std::sort(ids.begin(), ids.end());
  return out;
}

std::vector<std::vector<xml::NodeId>> RunBaseline(
    const std::vector<std::string>& queries, const std::string& doc) {
  VectorMultiQuerySink sink;
  Result<std::unique_ptr<MultiQueryProcessor>> proc =
      MultiQueryProcessor::Create(queries, &sink);
  EXPECT_TRUE(proc.ok()) << proc.status().ToString();
  EXPECT_TRUE(proc.value()->Consume({doc, false}).ok());
  EXPECT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  return Collect(sink, queries.size());
}

std::vector<std::vector<xml::NodeId>> RunAnalyzed(
    const std::vector<std::string>& queries, const std::string& doc,
    const AnalyzedEngine::Options& options,
    AnalyzedEngine::AnalysisStats* stats_out = nullptr) {
  VectorMultiQuerySink sink;
  Result<std::unique_ptr<AnalyzedEngine>> engine =
      AnalyzedEngine::Create(queries, &sink, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(engine.value()->Consume({doc, false}).ok());
  EXPECT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
  if (stats_out != nullptr) *stats_out = engine.value()->analysis_stats();
  return Collect(sink, queries.size());
}

TEST(AnalyzedEngineTest, DifferentialOnRandomBooks) {
  Result<dtd::Dtd> dtd = dtd::ParseDtd(CollectionBookDtd());
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  Result<DtdStructure> structure = DtdStructure::Build(dtd.value());
  ASSERT_TRUE(structure.ok()) << structure.status().ToString();

  const std::vector<std::string> queries = Workload();
  for (uint64_t seed : {1u, 7u, 23u}) {
    data::BookOptions book;
    book.seed = seed;
    book.number_levels = 8;
    book.max_repeats = 3;
    book.copies = 2;
    Result<std::string> doc = data::GenerateBook(book);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();

    const std::vector<std::vector<xml::NodeId>> expected =
        RunBaseline(queries, doc.value());

    for (AnalyzedEngine::Backend backend :
         {AnalyzedEngine::Backend::kFilter,
          AnalyzedEngine::Backend::kProduct}) {
      AnalyzedEngine::Options options;
      options.dtd = &structure.value();
      options.backend = backend;
      AnalyzedEngine::AnalysisStats stats;
      const std::vector<std::vector<xml::NodeId>> got =
          RunAnalyzed(queries, doc.value(), options, &stats);
      EXPECT_EQ(got, expected) << "seed " << seed << " backend "
                               << static_cast<int>(backend);
      EXPECT_EQ(stats.queries_unsatisfiable, 3u);
      EXPECT_GE(stats.queries_forwarded, 2u);  // equivalent pair + duplicate
      EXPECT_GE(stats.branches_minimized, 2u);
    }
  }
}

TEST(AnalyzedEngineTest, DifferentialWithoutDtd) {
  // Without a DTD, only the rewrite passes run — still result-preserving on
  // any document, including ones no DTD describes.
  const std::string doc =
      "<collection><misc><section><title/><p/></section></misc>"
      "<book><title/><author/></book></collection>";
  const std::vector<std::string> queries = {
      "//section[title][title]", "//section[p][title]", "//section[title][p]",
      "//book[author]/title",    "//book[author][title]/title",
  };
  const std::vector<std::vector<xml::NodeId>> expected =
      RunBaseline(queries, doc);
  for (AnalyzedEngine::Backend backend :
       {AnalyzedEngine::Backend::kFilter, AnalyzedEngine::Backend::kProduct}) {
    AnalyzedEngine::Options options;
    options.backend = backend;
    EXPECT_EQ(RunAnalyzed(queries, doc, options), expected);
  }
}

TEST(AnalyzedEngineTest, RandomDtdDocuments) {
  // A recursive synthetic DTD stresses the unbounded-depth paths of the
  // level-bound derivation.
  constexpr char kDtdText[] = R"(
<!ELEMENT r (s*, leaf?)>
<!ELEMENT s (s?, t*, leaf?)>
<!ELEMENT t (#PCDATA)>
<!ELEMENT leaf EMPTY>
<!ATTLIST leaf kind (hot|cold) #IMPLIED>
)";
  Result<dtd::Dtd> dtd = dtd::ParseDtd(kDtdText);
  ASSERT_TRUE(dtd.ok());
  Result<DtdStructure> structure = DtdStructure::Build(dtd.value());
  ASSERT_TRUE(structure.ok()) << structure.status().ToString();

  const std::vector<std::string> queries = {
      "//s/t",         "//s[t]/leaf",     "//s[leaf][t]",
      "//s[t][leaf]",  "/r/s/s//t",       "//leaf[@kind=\"hot\"]",
      "//t/s",         // unsat: t is a leaf
      "//r//r",        // unsat: r only at the root
      "//s[//t][t]",  // redundant descendant branch
  };
  for (uint64_t seed : {3u, 11u, 31u, 59u}) {
    dtd::GeneratorOptions gen;
    gen.seed = seed;
    gen.number_levels = 9;
    gen.max_repeats = 3;
    Result<std::string> doc = dtd::GenerateDocument(dtd.value(), "r", gen);
    ASSERT_TRUE(doc.ok());

    const std::vector<std::vector<xml::NodeId>> expected =
        RunBaseline(queries, doc.value());
    for (AnalyzedEngine::Backend backend :
         {AnalyzedEngine::Backend::kFilter,
          AnalyzedEngine::Backend::kProduct}) {
      AnalyzedEngine::Options options;
      options.dtd = &structure.value();
      options.backend = backend;
      EXPECT_EQ(RunAnalyzed(queries, doc.value(), options), expected)
          << "seed " << seed;
    }
  }
}

TEST(AnalyzedEngineTest, AllQueriesPrunedStreamsNothing) {
  Result<dtd::Dtd> dtd = dtd::ParseDtd(CollectionBookDtd());
  ASSERT_TRUE(dtd.ok());
  Result<DtdStructure> structure = DtdStructure::Build(dtd.value());
  ASSERT_TRUE(structure.ok());

  AnalyzedEngine::Options options;
  options.dtd = &structure.value();
  VectorMultiQuerySink sink;
  Result<std::unique_ptr<AnalyzedEngine>> engine = AnalyzedEngine::Create(
      {"//section/book", "//title/author"}, &sink, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value()->filter_engine(), nullptr);
  EXPECT_TRUE(engine.value()->Consume({"<collection></collection>", false}).ok());
  EXPECT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
  EXPECT_TRUE(sink.items().empty());
  EXPECT_EQ(engine.value()->analysis_stats().queries_pruned(), 2u);
}

TEST(AnalyzedEngineTest, ResetSupportsReplay) {
  const std::vector<std::string> queries = {"//section/title",
                                            "//section[p]/title"};
  const std::string doc =
      "<book><title/><author/><section><title/><p/></section></book>";
  VectorMultiQuerySink sink;
  Result<std::unique_ptr<AnalyzedEngine>> engine =
      AnalyzedEngine::Create(queries, &sink);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->Consume({doc, false}).ok());
  ASSERT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
  const size_t first_run = sink.items().size();
  EXPECT_GT(first_run, 0u);

  engine.value()->Reset();
  ASSERT_TRUE(engine.value()->Consume({doc, false}).ok());
  ASSERT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(sink.items().size(), 2 * first_run);
}

}  // namespace
}  // namespace twigm
