#include "xpath/query_tree.h"

#include "core/machine_builder.h"
#include "gtest/gtest.h"

namespace twigm {
namespace {

using xpath::Axis;
using xpath::QueryNode;
using xpath::QueryTree;

QueryTree MustParse(std::string_view query) {
  Result<QueryTree> result = QueryTree::Parse(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(QueryTreeTest, LinearQueryShape) {
  QueryTree tree = MustParse("//a/b//c");
  ASSERT_NE(tree.root(), nullptr);
  EXPECT_EQ(tree.root()->name, "a");
  EXPECT_EQ(tree.root()->axis, Axis::kDescendant);
  ASSERT_EQ(tree.root()->children.size(), 1u);
  const QueryNode* b = tree.root()->children[0].get();
  EXPECT_EQ(b->name, "b");
  EXPECT_EQ(b->axis, Axis::kChild);
  const QueryNode* c = b->children[0].get();
  EXPECT_EQ(c->axis, Axis::kDescendant);
  EXPECT_EQ(tree.sol(), c);
  EXPECT_TRUE(c->on_output_path);
  EXPECT_TRUE(tree.is_linear());
  EXPECT_EQ(tree.node_count(), 3);
}

TEST(QueryTreeTest, PredicatesAreOffPath) {
  QueryTree tree = MustParse("//a[d]//b[e]//c");
  EXPECT_TRUE(tree.has_predicates());
  EXPECT_FALSE(tree.is_linear());
  const QueryNode* a = tree.root();
  ASSERT_EQ(a->children.size(), 2u);
  // Predicate child first (built in query order), then path continuation.
  const QueryNode* d = a->children[0].get();
  const QueryNode* b = a->children[1].get();
  EXPECT_EQ(d->name, "d");
  EXPECT_FALSE(d->on_output_path);
  EXPECT_TRUE(b->on_output_path);
  EXPECT_EQ(tree.sol()->name, "c");
  EXPECT_EQ(tree.node_count(), 5);
}

TEST(QueryTreeTest, Classification) {
  EXPECT_TRUE(MustParse("//a//b").has_descendant_axis());
  EXPECT_FALSE(MustParse("/a/b").has_descendant_axis());
  EXPECT_TRUE(MustParse("/a/*").has_wildcard());
  EXPECT_FALSE(MustParse("/a/b").has_wildcard());
  EXPECT_TRUE(MustParse("/a[b=\"x\"]").has_value_tests());
  EXPECT_TRUE(MustParse("/a[@id=\"1\"]").has_value_tests());
  EXPECT_FALSE(MustParse("/a[b]").has_value_tests());
  EXPECT_TRUE(MustParse("/a[b]").has_predicates());
  EXPECT_FALSE(MustParse("/a/b").has_predicates());
}

TEST(QueryTreeTest, SelfTestAttachesToNode) {
  QueryTree tree = MustParse("//a[.=\"x\"]/b");
  EXPECT_TRUE(tree.root()->has_value_test);
  EXPECT_EQ(tree.root()->literal, "x");
  // A self test alone creates no extra node.
  EXPECT_EQ(tree.node_count(), 2);
}

TEST(QueryTreeTest, ValueTestOnPredicateLeaf) {
  QueryTree tree = MustParse("//a[b/c=\"v\"]");
  const QueryNode* b = tree.root()->children[0].get();
  const QueryNode* c = b->children[0].get();
  EXPECT_FALSE(b->has_value_test);
  EXPECT_TRUE(c->has_value_test);
  EXPECT_EQ(c->literal, "v");
}

TEST(QueryTreeTest, AttributeNode) {
  QueryTree tree = MustParse("//a[@id=\"7\"]/b");
  const QueryNode* attr = tree.root()->children[0].get();
  EXPECT_TRUE(attr->is_attribute);
  EXPECT_EQ(attr->name, "id");
  EXPECT_TRUE(attr->has_value_test);
}

TEST(QueryTreeTest, MultipleSelfTestsRejected) {
  Result<QueryTree> result = QueryTree::Parse("//a[.=\"x\"][.=\"y\"]");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
}

TEST(QueryTreeTest, AttributeReturnNodeRejected) {
  Result<QueryTree> result = QueryTree::Parse("//a/@id");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
}

TEST(QueryTreeTest, ToStringRoundTrip) {
  for (const char* query :
       {"/a/b/c", "//a//b//c", "//a[d]//b[e]//c", "//a[b[c]]/d",
        "//*[title]//p", "//a[@id]/b", "//a[.=\"x\"]/b",
        "//a[b=\"x\"][c]/d"}) {
    EXPECT_EQ(MustParse(query).ToString(), query) << query;
  }
}

TEST(QueryTreeTest, NodesPreOrder) {
  QueryTree tree = MustParse("//a[d]/b[e]//c");
  std::vector<const QueryNode*> nodes = tree.NodesPreOrder();
  ASSERT_EQ(nodes.size(), 5u);
  EXPECT_EQ(nodes[0]->name, "a");
  EXPECT_EQ(nodes[0]->index, 0);
  EXPECT_EQ(nodes[1]->name, "d");
  EXPECT_EQ(nodes[2]->name, "b");
  EXPECT_EQ(nodes[3]->name, "e");
  EXPECT_EQ(nodes[4]->name, "c");
  EXPECT_EQ(nodes[4]->index, 4);
}

// --- machine construction (section 4.2) ---

using core::MachineGraph;

MachineGraph MustBuild(std::string_view query) {
  QueryTree tree = MustParse(query);
  Result<MachineGraph> graph = MachineGraph::Build(tree);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

TEST(MachineBuilderTest, SimpleChainEdges) {
  MachineGraph graph = MustBuild("//a/b//c");
  ASSERT_EQ(graph.node_count(), 3u);
  EXPECT_EQ(graph.root()->edge.ToString(), "(>=,1)");
  EXPECT_EQ(graph.root()->children[0]->edge.ToString(), "(=,1)");
  EXPECT_EQ(graph.root()->children[0]->children[0]->edge.ToString(),
            "(>=,1)");
  EXPECT_TRUE(graph.return_node()->is_return);
}

TEST(MachineBuilderTest, AbsoluteRootEdge) {
  MachineGraph graph = MustBuild("/a/b");
  EXPECT_EQ(graph.root()->edge.ToString(), "(=,1)");
}

TEST(MachineBuilderTest, InteriorStarsCollapse) {
  // a/*/b: one interior star => (=,2).
  MachineGraph graph = MustBuild("//a/*/b");
  ASSERT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.root()->children[0]->edge.ToString(), "(=,2)");
}

TEST(MachineBuilderTest, StarWithDescendantCollapses) {
  // a/*//b: '//' somewhere in the chain => (>=,2).
  EXPECT_EQ(MustBuild("//a/*//b").root()->children[0]->edge.ToString(),
            "(>=,2)");
  // a//*/b: same.
  EXPECT_EQ(MustBuild("//a//*/b").root()->children[0]->edge.ToString(),
            "(>=,2)");
  // a/*/*/b: two stars => (=,3).
  EXPECT_EQ(MustBuild("//a/*/*/b").root()->children[0]->edge.ToString(),
            "(=,3)");
}

TEST(MachineBuilderTest, LeadingStarsCollapseIntoRootEdge) {
  // //*/a: the star collapses into the root edge (>=,2).
  MachineGraph graph = MustBuild("//*/a");
  ASSERT_EQ(graph.node_count(), 1u);
  EXPECT_EQ(graph.root()->edge.ToString(), "(>=,2)");
  // /*/a: exact (=,2).
  EXPECT_EQ(MustBuild("/*/a").root()->edge.ToString(), "(=,2)");
}

TEST(MachineBuilderTest, BranchingStarGetsMachineNode) {
  // The star has two children -> machine node labeled '*'.
  MachineGraph graph = MustBuild("//a/*[d]/b");
  ASSERT_EQ(graph.node_count(), 4u);
  const core::MachineNode* star = graph.root()->children[0];
  EXPECT_TRUE(star->is_wildcard);
  EXPECT_EQ(star->label, "*");
  EXPECT_EQ(star->num_slots, 2);
}

TEST(MachineBuilderTest, LeafStarGetsMachineNode) {
  MachineGraph graph = MustBuild("//a/*");
  ASSERT_EQ(graph.node_count(), 2u);
  EXPECT_TRUE(graph.return_node()->is_wildcard);
}

TEST(MachineBuilderTest, AttributeTestsBecomeSlots) {
  MachineGraph graph = MustBuild("//a[@id][b]/c");
  ASSERT_EQ(graph.node_count(), 3u);  // a, b, c — @id is a slot, not a node
  const core::MachineNode* a = graph.root();
  EXPECT_EQ(a->num_slots, 3);  // @id + b + c
  ASSERT_EQ(a->attr_tests.size(), 1u);
  EXPECT_EQ(a->attr_tests[0].name, "id");
  EXPECT_EQ(a->required_mask, 0b111u);
}

TEST(MachineBuilderTest, BranchSlotsAreDense) {
  MachineGraph graph = MustBuild("//a[b][c][d]/e");
  const core::MachineNode* a = graph.root();
  EXPECT_EQ(a->num_slots, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a->children[static_cast<size_t>(i)]->branch_slot, i);
  }
}

TEST(MachineBuilderTest, PaperQ1Machine) {
  // Q1 = //a[d]//b[e]//c — five machine nodes (Fig. 4).
  MachineGraph graph = MustBuild("//a[d]//b[e]//c");
  EXPECT_EQ(graph.node_count(), 5u);
  EXPECT_EQ(graph.root()->label, "a");
  EXPECT_EQ(graph.root()->num_slots, 2);
  EXPECT_EQ(graph.return_node()->label, "c");
  EXPECT_EQ(graph.return_node()->edge.ToString(), "(>=,1)");
}

TEST(MachineBuilderTest, ToStringMentionsStructure) {
  MachineGraph graph = MustBuild("//a[@id]//b");
  const std::string dump = graph.ToString();
  EXPECT_NE(dump.find("label=a"), std::string::npos);
  EXPECT_NE(dump.find("@id"), std::string::npos);
  EXPECT_NE(dump.find("(return)"), std::string::npos);
}

}  // namespace
}  // namespace twigm
