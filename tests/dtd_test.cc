#include <set>
#include <string>

#include "dtd/dtd_generator.h"
#include "dtd/dtd_parser.h"
#include "gtest/gtest.h"
#include "xml/dom.h"

namespace twigm::dtd {
namespace {

TEST(DtdParserTest, SimpleElementDecl) {
  Result<Dtd> dtd = ParseDtd("<!ELEMENT a (b, c)>");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  const ElementDecl* a = dtd.value().FindElement("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->content.kind, ContentExpr::Kind::kSequence);
  ASSERT_EQ(a->content.children.size(), 2u);
  EXPECT_EQ(a->content.children[0].name, "b");
  EXPECT_EQ(a->content.children[1].name, "c");
  EXPECT_EQ(dtd.value().first_element, "a");
}

TEST(DtdParserTest, ChoiceAndRepetition) {
  Result<Dtd> dtd = ParseDtd("<!ELEMENT a (b | c)*>");
  ASSERT_TRUE(dtd.ok());
  const ElementDecl* a = dtd.value().FindElement("a");
  EXPECT_EQ(a->content.kind, ContentExpr::Kind::kChoice);
  EXPECT_EQ(a->content.repeat, Repeat::kStar);
}

TEST(DtdParserTest, ParticleRepetitions) {
  Result<Dtd> dtd = ParseDtd("<!ELEMENT a (b?, c+, d*)>");
  ASSERT_TRUE(dtd.ok());
  const ContentExpr& seq = dtd.value().FindElement("a")->content;
  EXPECT_EQ(seq.children[0].repeat, Repeat::kOptional);
  EXPECT_EQ(seq.children[1].repeat, Repeat::kPlus);
  EXPECT_EQ(seq.children[2].repeat, Repeat::kStar);
}

TEST(DtdParserTest, NestedGroups) {
  Result<Dtd> dtd = ParseDtd("<!ELEMENT a (b, (c | d)+, e)>");
  ASSERT_TRUE(dtd.ok());
  const ContentExpr& seq = dtd.value().FindElement("a")->content;
  ASSERT_EQ(seq.children.size(), 3u);
  EXPECT_EQ(seq.children[1].kind, ContentExpr::Kind::kChoice);
  EXPECT_EQ(seq.children[1].repeat, Repeat::kPlus);
}

TEST(DtdParserTest, PcdataAndMixed) {
  Result<Dtd> pure = ParseDtd("<!ELEMENT t (#PCDATA)>");
  ASSERT_TRUE(pure.ok());
  EXPECT_EQ(pure.value().FindElement("t")->content.kind,
            ContentExpr::Kind::kPcdata);
  EXPECT_FALSE(pure.value().FindElement("t")->mixed);

  Result<Dtd> mixed = ParseDtd("<!ELEMENT p (#PCDATA | em | strong)*>");
  ASSERT_TRUE(mixed.ok());
  EXPECT_TRUE(mixed.value().FindElement("p")->mixed);
  EXPECT_EQ(mixed.value().FindElement("p")->content.kind,
            ContentExpr::Kind::kChoice);
}

TEST(DtdParserTest, EmptyAndAny) {
  Result<Dtd> dtd = ParseDtd("<!ELEMENT e EMPTY><!ELEMENT x ANY>");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd.value().FindElement("e")->content.kind,
            ContentExpr::Kind::kEmpty);
  EXPECT_EQ(dtd.value().FindElement("x")->content.kind,
            ContentExpr::Kind::kAny);
}

TEST(DtdParserTest, Attlist) {
  Result<Dtd> dtd = ParseDtd(R"(
    <!ELEMENT a EMPTY>
    <!ATTLIST a id ID #REQUIRED
                kind (big | small) "small"
                note CDATA #IMPLIED
                ver CDATA #FIXED "1">
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  const std::vector<AttrDecl>* attrs = dtd.value().FindAttlist("a");
  ASSERT_NE(attrs, nullptr);
  ASSERT_EQ(attrs->size(), 4u);
  EXPECT_EQ((*attrs)[0].type, "ID");
  EXPECT_EQ((*attrs)[0].default_kind, AttrDefault::kRequired);
  EXPECT_EQ((*attrs)[1].enum_values.size(), 2u);
  EXPECT_EQ((*attrs)[1].default_kind, AttrDefault::kValue);
  EXPECT_EQ((*attrs)[1].default_value, "small");
  EXPECT_EQ((*attrs)[2].default_kind, AttrDefault::kImplied);
  EXPECT_EQ((*attrs)[3].default_kind, AttrDefault::kFixed);
  EXPECT_EQ((*attrs)[3].default_value, "1");
}

TEST(DtdParserTest, CommentsSkipped) {
  Result<Dtd> dtd =
      ParseDtd("<!-- c --><!ELEMENT a EMPTY><!-- d -->");
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd.value().elements.size(), 1u);
}

TEST(DtdParserTest, Errors) {
  EXPECT_FALSE(ParseDtd("").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b,>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b | c, d)>").ok());  // mixed seps
  EXPECT_FALSE(ParseDtd("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>").ok());
  EXPECT_FALSE(ParseDtd("<!WHAT a>").ok());
  EXPECT_FALSE(ParseDtd("garbage").ok());
}

TEST(DtdGeneratorTest, GeneratesWellFormedXml) {
  Result<Dtd> dtd = ParseDtd(R"(
    <!ELEMENT root (item*, note?)>
    <!ELEMENT item (#PCDATA)>
    <!ATTLIST item id ID #REQUIRED>
    <!ELEMENT note (#PCDATA)>
  )");
  ASSERT_TRUE(dtd.ok());
  GeneratorOptions options;
  options.seed = 1;
  Result<std::string> doc = GenerateDocument(dtd.value(), "", options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  Result<xml::DomDocument> parsed = xml::DomDocument::Parse(doc.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().root()->tag, "root");
}

TEST(DtdGeneratorTest, DeterministicPerSeed) {
  Result<Dtd> dtd = ParseDtd("<!ELEMENT r (a | b)*><!ELEMENT a (#PCDATA)>"
                             "<!ELEMENT b EMPTY>");
  ASSERT_TRUE(dtd.ok());
  GeneratorOptions options;
  options.seed = 99;
  Result<std::string> one = GenerateDocument(dtd.value(), "r", options);
  Result<std::string> two = GenerateDocument(dtd.value(), "r", options);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(one.value(), two.value());
  options.seed = 100;
  Result<std::string> three = GenerateDocument(dtd.value(), "r", options);
  ASSERT_TRUE(three.ok());
  EXPECT_NE(one.value(), three.value());
}

TEST(DtdGeneratorTest, RespectsNumberLevels) {
  // Unboundedly recursive DTD; the generator must stop at number_levels.
  Result<Dtd> dtd =
      ParseDtd("<!ELEMENT n (n*, t?)><!ELEMENT t (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  GeneratorOptions options;
  options.seed = 3;
  options.number_levels = 5;
  options.max_repeats = 3;
  Result<std::string> doc = GenerateDocument(dtd.value(), "n", options);
  ASSERT_TRUE(doc.ok());
  Result<xml::DomDocument> parsed = xml::DomDocument::Parse(doc.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_LE(parsed.value().depth(), 5);
}

TEST(DtdGeneratorTest, RespectsMaxRepeats) {
  Result<Dtd> dtd = ParseDtd("<!ELEMENT r (x*)><!ELEMENT x EMPTY>");
  ASSERT_TRUE(dtd.ok());
  GeneratorOptions options;
  options.max_repeats = 4;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    options.seed = seed;
    Result<std::string> doc = GenerateDocument(dtd.value(), "r", options);
    ASSERT_TRUE(doc.ok());
    Result<xml::DomDocument> parsed = xml::DomDocument::Parse(doc.value());
    ASSERT_TRUE(parsed.ok());
    EXPECT_LE(parsed.value().root()->children.size(), 4u);
  }
}

TEST(DtdGeneratorTest, RequiredAttributesAlwaysPresent) {
  Result<Dtd> dtd = ParseDtd(
      "<!ELEMENT r (x+)><!ELEMENT x EMPTY>"
      "<!ATTLIST x id ID #REQUIRED opt CDATA #IMPLIED>");
  ASSERT_TRUE(dtd.ok());
  GeneratorOptions options;
  options.seed = 17;
  Result<std::string> doc = GenerateDocument(dtd.value(), "r", options);
  ASSERT_TRUE(doc.ok());
  Result<xml::DomDocument> parsed = xml::DomDocument::Parse(doc.value());
  ASSERT_TRUE(parsed.ok());
  std::set<std::string> ids;
  for (const xml::DomNode* child : parsed.value().root()->children) {
    const std::string* id = child->FindAttribute("id");
    ASSERT_NE(id, nullptr);
    EXPECT_TRUE(ids.insert(*id).second) << "ID values must be unique";
  }
}

TEST(DtdGeneratorTest, UnknownRootFails) {
  Result<Dtd> dtd = ParseDtd("<!ELEMENT a EMPTY>");
  ASSERT_TRUE(dtd.ok());
  Result<std::string> doc =
      GenerateDocument(dtd.value(), "nope", GeneratorOptions());
  EXPECT_FALSE(doc.ok());
}

TEST(DtdGeneratorTest, CollectionConcatenatesIdenticalCopies) {
  Result<Dtd> dtd = ParseDtd("<!ELEMENT r (x*)><!ELEMENT x (#PCDATA)>");
  ASSERT_TRUE(dtd.ok());
  GeneratorOptions options;
  options.seed = 5;
  Result<std::string> coll = GenerateCollection(dtd.value(), "r", options, 3);
  ASSERT_TRUE(coll.ok());
  Result<xml::DomDocument> parsed = xml::DomDocument::Parse(coll.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().root()->tag, "collection");
  ASSERT_EQ(parsed.value().root()->children.size(), 3u);
  // Copies are identical in structure.
  EXPECT_EQ(parsed.value().root()->children[0]->children.size(),
            parsed.value().root()->children[2]->children.size());
}

}  // namespace
}  // namespace twigm::dtd
