// IndexReader must fail closed on any damaged index image: truncation at
// every length, bad magic, wrong version, flipped payload bytes, and
// structurally inconsistent (but correctly checksummed) content such as
// out-of-range postings. Every case must return a descriptive Status —
// never crash, never return a reader that could read out of bounds. The
// suite runs under the ASan/UBSan CI legs, so an out-of-bounds read in
// validation itself would also fail loudly.

#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "index/index_builder.h"
#include "index/index_format.h"
#include "index/index_reader.h"

namespace twigm::index {
namespace {

std::string ValidImage() {
  IndexBuilder builder;
  const std::string doc =
      "<lib><book year=\"2001\"><title>tea</title><b/></book>"
      "<book><title>x</title></book><misc note=\"n\">tail</misc></lib>";
  EXPECT_TRUE(builder.Consume({doc, true}).ok());
  std::string image;
  EXPECT_TRUE(builder.Serialize(&image).ok());
  return image;
}

Status OpenStatus(std::string image) {
  Result<std::unique_ptr<IndexReader>> reader =
      IndexReader::OpenBytes(std::move(image));
  return reader.ok() ? Status::Ok() : reader.status();
}

// --- helpers to re-checksum a deliberately inconsistent image ------------

FileHeader* HeaderOf(std::string* image) {
  return reinterpret_cast<FileHeader*>(image->data());
}

SectionEntry* TableOf(std::string* image) {
  return reinterpret_cast<SectionEntry*>(image->data() + sizeof(FileHeader));
}

SectionEntry* FindSection(std::string* image, SectionId id) {
  SectionEntry* table = TableOf(image);
  for (uint32_t i = 0; i < HeaderOf(image)->section_count; ++i) {
    if (table[i].id == static_cast<uint32_t>(id)) return &table[i];
  }
  return nullptr;
}

// Recomputes `section`'s payload CRC and the header's table CRC so the
// image passes the checksum gates and exercises the *structural* checks.
void Reseal(std::string* image, SectionEntry* section) {
  section->crc32 = Crc32(image->data() + section->offset, section->size);
  FileHeader* header = HeaderOf(image);
  header->table_crc32 =
      Crc32(TableOf(image), header->section_count * sizeof(SectionEntry));
}

// -------------------------------------------------------------------------

TEST(IndexReaderCorruptionTest, ValidImageOpens) {
  EXPECT_TRUE(OpenStatus(ValidImage()).ok());
}

TEST(IndexReaderCorruptionTest, EveryTruncationFailsClosed) {
  const std::string image = ValidImage();
  for (size_t len = 0; len < image.size(); ++len) {
    const Status s = OpenStatus(image.substr(0, len));
    ASSERT_FALSE(s.ok()) << "truncated to " << len << " of " << image.size();
    ASSERT_FALSE(s.message().empty());
  }
}

TEST(IndexReaderCorruptionTest, BadMagicFails) {
  std::string image = ValidImage();
  image[0] = 'X';
  const Status s = OpenStatus(std::move(image));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("magic"), std::string::npos) << s.ToString();
}

TEST(IndexReaderCorruptionTest, VersionMismatchFails) {
  std::string image = ValidImage();
  HeaderOf(&image)->version = kFormatVersion + 1;
  const Status s = OpenStatus(std::move(image));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.ToString();
}

TEST(IndexReaderCorruptionTest, AbsurdSectionCountFails) {
  std::string image = ValidImage();
  HeaderOf(&image)->section_count = kMaxSections + 1;
  EXPECT_FALSE(OpenStatus(std::move(image)).ok());
}

TEST(IndexReaderCorruptionTest, AbsurdElementCountFails) {
  std::string image = ValidImage();
  HeaderOf(&image)->element_count = ~0ULL;  // would overflow size math
  EXPECT_FALSE(OpenStatus(std::move(image)).ok());
}

TEST(IndexReaderCorruptionTest, FlippedTableByteFails) {
  std::string image = ValidImage();
  image[sizeof(FileHeader) + 3] ^= 0x40;
  const Status s = OpenStatus(std::move(image));
  ASSERT_FALSE(s.ok());
}

TEST(IndexReaderCorruptionTest, FlippedPayloadByteFailsCrc) {
  std::string image = ValidImage();
  const SectionEntry* post = FindSection(&image, SectionId::kPost);
  ASSERT_NE(post, nullptr);
  image[post->offset] ^= 0x01;
  const Status s = OpenStatus(std::move(image));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.ToString();
}

TEST(IndexReaderCorruptionTest, EveryFlippedByteFailsClosedOrIsBenign) {
  // Padding bytes between sections are the only bytes no checksum covers;
  // a flip there must leave the image fully readable. Everything else must
  // be rejected. Either way: no crash (ASan/UBSan legs verify).
  const std::string image = ValidImage();
  for (size_t pos = 0; pos < image.size(); ++pos) {
    std::string copy = image;
    copy[pos] ^= 0xFF;
    Result<std::unique_ptr<IndexReader>> reader =
        IndexReader::OpenBytes(std::move(copy));
    if (reader.ok()) {
      EXPECT_EQ(reader.value()->element_count(), 7u) << "pos=" << pos;
    }
  }
}

TEST(IndexReaderCorruptionTest, OutOfRangePostingsPreFails) {
  std::string image = ValidImage();
  SectionEntry* data = FindSection(&image, SectionId::kPostingsData);
  ASSERT_NE(data, nullptr);
  uint32_t huge = 1u << 30;
  std::memcpy(image.data() + data->offset, &huge, sizeof(huge));
  Reseal(&image, data);
  const Status s = OpenStatus(std::move(image));
  ASSERT_FALSE(s.ok());  // pre id exceeds element_count
}

TEST(IndexReaderCorruptionTest, UnsortedPostingsFail) {
  std::string image = ValidImage();
  SectionEntry* index = FindSection(&image, SectionId::kPostingsIndex);
  SectionEntry* data = FindSection(&image, SectionId::kPostingsData);
  ASSERT_NE(index, nullptr);
  ASSERT_NE(data, nullptr);
  // Find a symbol with >= 2 postings and swap its first two pre ids.
  PostingsRange* ranges =
      reinterpret_cast<PostingsRange*>(image.data() + index->offset);
  uint32_t* pres = reinterpret_cast<uint32_t*>(image.data() + data->offset);
  const size_t symbols = index->size / sizeof(PostingsRange);
  bool swapped = false;
  for (size_t i = 0; i < symbols && !swapped; ++i) {
    if (ranges[i].count >= 2) {
      std::swap(pres[ranges[i].begin], pres[ranges[i].begin + 1]);
      swapped = true;
    }
  }
  ASSERT_TRUE(swapped) << "fixture needs a tag with two occurrences";
  Reseal(&image, data);
  EXPECT_FALSE(OpenStatus(std::move(image)).ok());
}

TEST(IndexReaderCorruptionTest, PostingsRangeBeyondDataFails) {
  std::string image = ValidImage();
  SectionEntry* index = FindSection(&image, SectionId::kPostingsIndex);
  ASSERT_NE(index, nullptr);
  PostingsRange* ranges =
      reinterpret_cast<PostingsRange*>(image.data() + index->offset);
  ranges[0].begin = ~0ULL / 2;  // also exercises overflow-safe bounds math
  Reseal(&image, index);
  EXPECT_FALSE(OpenStatus(std::move(image)).ok());
}

TEST(IndexReaderCorruptionTest, TextBlobOverrunFails) {
  std::string image = ValidImage();
  SectionEntry* index = FindSection(&image, SectionId::kTextIndex);
  ASSERT_NE(index, nullptr);
  ASSERT_GE(index->size, sizeof(TextEntry));
  TextEntry* entries =
      reinterpret_cast<TextEntry*>(image.data() + index->offset);
  entries[0].length = 0x7FFFFFFF;
  Reseal(&image, index);
  EXPECT_FALSE(OpenStatus(std::move(image)).ok());
}

TEST(IndexReaderCorruptionTest, AttrEntryBeyondBlobFails) {
  std::string image = ValidImage();
  SectionEntry* index = FindSection(&image, SectionId::kAttrIndex);
  ASSERT_NE(index, nullptr);
  ASSERT_GE(index->size, sizeof(AttrEntry));
  AttrEntry* entries =
      reinterpret_cast<AttrEntry*>(image.data() + index->offset);
  entries[0].offset = ~0ULL / 2;
  Reseal(&image, index);
  EXPECT_FALSE(OpenStatus(std::move(image)).ok());
}

TEST(IndexReaderCorruptionTest, MisalignedSectionOffsetFails) {
  std::string image = ValidImage();
  image.push_back('\0');  // room to shift the last section by one byte
  FileHeader* header = HeaderOf(&image);
  SectionEntry* table = TableOf(&image);
  SectionEntry* last = &table[header->section_count - 1];
  std::memmove(image.data() + last->offset + 1, image.data() + last->offset,
               last->size);
  last->offset += 1;
  Reseal(&image, last);
  const Status s = OpenStatus(std::move(image));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("align"), std::string::npos) << s.ToString();
}

TEST(IndexReaderCorruptionTest, MissingSectionFails) {
  std::string image = ValidImage();
  // Retag the text-blob section as a duplicate of the attr blob: the set of
  // required sections is then incomplete.
  SectionEntry* text = FindSection(&image, SectionId::kTextBlob);
  ASSERT_NE(text, nullptr);
  text->id = static_cast<uint32_t>(SectionId::kAttrBlob);
  FileHeader* header = HeaderOf(&image);
  header->table_crc32 =
      Crc32(TableOf(&image), header->section_count * sizeof(SectionEntry));
  EXPECT_FALSE(OpenStatus(std::move(image)).ok());
}

TEST(IndexReaderCorruptionTest, OpenOnMissingFileFails) {
  Result<std::unique_ptr<IndexReader>> reader =
      IndexReader::Open("/nonexistent/path/to/index.twgmidx");
  EXPECT_FALSE(reader.ok());
}

TEST(IndexReaderCorruptionTest, EmptyImageFails) {
  EXPECT_FALSE(OpenStatus(std::string()).ok());
}

}  // namespace
}  // namespace twigm::index
