#include "xpath/parser.h"

#include "gtest/gtest.h"
#include "xpath/lexer.h"

namespace twigm::xpath {
namespace {

// Parses and renders back to canonical text.
std::string RoundTrip(std::string_view query) {
  Result<PathExpr> result = ParseQuery(query);
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  return ToString(result.value());
}

StatusCode ParseCode(std::string_view query) {
  Result<PathExpr> result = ParseQuery(query);
  return result.ok() ? StatusCode::kOk : result.status().code();
}

TEST(LexerTest, BasicTokens) {
  Result<std::vector<Token>> tokens = Tokenize("//a[b=\"x\"]/*");
  ASSERT_TRUE(tokens.ok());
  const std::vector<TokenKind> kinds = {
      TokenKind::kDoubleSlash, TokenKind::kName,         TokenKind::kLBracket,
      TokenKind::kName,        TokenKind::kEq,           TokenKind::kStringLiteral,
      TokenKind::kRBracket,    TokenKind::kSlash,        TokenKind::kStar,
      TokenKind::kEnd};
  ASSERT_EQ(tokens.value().size(), kinds.size());
  for (size_t i = 0; i < kinds.size(); ++i) {
    EXPECT_EQ(tokens.value()[i].kind, kinds[i]) << "token " << i;
  }
}

TEST(LexerTest, ComparisonOperators) {
  Result<std::vector<Token>> tokens = Tokenize("= != < <= > >=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kEq);
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kNe);
  EXPECT_EQ(tokens.value()[2].kind, TokenKind::kLt);
  EXPECT_EQ(tokens.value()[3].kind, TokenKind::kLe);
  EXPECT_EQ(tokens.value()[4].kind, TokenKind::kGt);
  EXPECT_EQ(tokens.value()[5].kind, TokenKind::kGe);
}

TEST(LexerTest, NumbersAndDot) {
  Result<std::vector<Token>> tokens = Tokenize("123 1.5 .5 .");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens.value()[0].text, "123");
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens.value()[1].text, "1.5");
  EXPECT_EQ(tokens.value()[2].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens.value()[2].text, ".5");
  EXPECT_EQ(tokens.value()[3].kind, TokenKind::kDot);
}

TEST(LexerTest, SingleAndDoubleQuotedLiterals) {
  Result<std::vector<Token>> tokens = Tokenize("\"dq\" 'sq'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "dq");
  EXPECT_EQ(tokens.value()[1].text, "sq");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("//a[\"unterminated]").ok());
  EXPECT_FALSE(Tokenize("//a ! b").ok());
  EXPECT_FALSE(Tokenize("//a[text()]").ok());
  EXPECT_FALSE(Tokenize("//a$").ok());
}

TEST(ParserTest, LinearPaths) {
  EXPECT_EQ(RoundTrip("/a/b/c"), "/a/b/c");
  EXPECT_EQ(RoundTrip("//a//b//c"), "//a//b//c");
  EXPECT_EQ(RoundTrip("/a//b/c"), "/a//b/c");
  EXPECT_EQ(RoundTrip("//*"), "//*");
  EXPECT_EQ(RoundTrip("/a/*//b"), "/a/*//b");
}

TEST(ParserTest, Whitespace) {
  EXPECT_EQ(RoundTrip(" //a [ b ] / c "), "//a[b]/c");
}

TEST(ParserTest, Predicates) {
  EXPECT_EQ(RoundTrip("//a[b]/c"), "//a[b]/c");
  EXPECT_EQ(RoundTrip("//a[d]//b[e]//c"), "//a[d]//b[e]//c");
  EXPECT_EQ(RoundTrip("//a[b/c]/d"), "//a[b/c]/d");
  EXPECT_EQ(RoundTrip("//a[//b]/c"), "//a[//b]/c");
  EXPECT_EQ(RoundTrip("//a[b][c]/d"), "//a[b][c]/d");
}

TEST(ParserTest, NestedPredicates) {
  EXPECT_EQ(RoundTrip("//a[b[c]]/d"), "//a[b[c]]/d");
  EXPECT_EQ(RoundTrip("//a[b[c[d]]/e]"), "//a[b[c[d]]/e]");
}

TEST(ParserTest, AttributeTests) {
  EXPECT_EQ(RoundTrip("//a[@id]/b"), "//a[@id]/b");
  EXPECT_EQ(RoundTrip("//a[@id=\"1\"]"), "//a[@id=\"1\"]");
  EXPECT_EQ(RoundTrip("//a[b/@id]"), "//a[b/@id]");
}

TEST(ParserTest, ValueTests) {
  EXPECT_EQ(RoundTrip("//a[b=\"x\"]"), "//a[b=\"x\"]");
  EXPECT_EQ(RoundTrip("//a[b!=\"x\"]"), "//a[b!=\"x\"]");
  EXPECT_EQ(RoundTrip("//a[b<5]"), "//a[b<5]");
  EXPECT_EQ(RoundTrip("//a[b>=1.5]"), "//a[b>=1.5]");
  EXPECT_EQ(RoundTrip("//a[.=\"x\"]"), "//a[.=\"x\"]");
}

TEST(ParserTest, WildcardWithPredicate) {
  EXPECT_EQ(RoundTrip("//*[b]/c"), "//*[b]/c");
  EXPECT_EQ(RoundTrip("//a/*[@x]//c"), "//a/*[@x]//c");
}

TEST(ParserTest, ErrorsAreParseErrors) {
  EXPECT_EQ(ParseCode(""), StatusCode::kParseError);
  EXPECT_EQ(ParseCode("a/b"), StatusCode::kParseError);     // no anchor
  EXPECT_EQ(ParseCode("//a["), StatusCode::kParseError);    // open bracket
  EXPECT_EQ(ParseCode("//a[]"), StatusCode::kParseError);   // empty predicate
  EXPECT_EQ(ParseCode("//a]b"), StatusCode::kParseError);
  EXPECT_EQ(ParseCode("//a//"), StatusCode::kParseError);   // trailing axis
  EXPECT_EQ(ParseCode("//a[b=]"), StatusCode::kParseError); // missing literal
  EXPECT_EQ(ParseCode("//a[.]"), StatusCode::kParseError);  // bare self test
  EXPECT_EQ(ParseCode("//a[/b]"), StatusCode::kParseError); // absolute pred
}

TEST(ParserTest, AttributeRestrictions) {
  // Attribute must be the last step of its path.
  EXPECT_EQ(ParseCode("//a/@id/b"), StatusCode::kParseError);
  // '//@x' is not supported.
  EXPECT_EQ(ParseCode("//a[//@x]"), StatusCode::kParseError);
  // Predicates cannot hang off an attribute.
  EXPECT_EQ(ParseCode("//a[@x[y]]"), StatusCode::kParseError);
}

TEST(ParserTest, AstShape) {
  Result<PathExpr> result = ParseQuery("//a[d]/b[e]//c");
  ASSERT_TRUE(result.ok());
  const PathExpr& path = result.value();
  EXPECT_FALSE(path.absolute_child_anchor);
  ASSERT_EQ(path.steps.size(), 3u);
  EXPECT_EQ(path.steps[0].name, "a");
  EXPECT_EQ(path.steps[0].axis, Axis::kDescendant);
  ASSERT_EQ(path.steps[0].predicates.size(), 1u);
  EXPECT_EQ(path.steps[0].predicates[0].path.steps[0].name, "d");
  EXPECT_EQ(path.steps[1].axis, Axis::kChild);
  EXPECT_EQ(path.steps[2].axis, Axis::kDescendant);
  EXPECT_EQ(path.steps[2].name, "c");
}

TEST(ParserTest, ValueTestAst) {
  Result<PathExpr> result = ParseQuery("//a[b/c>=10]");
  ASSERT_TRUE(result.ok());
  const Predicate& pred = result.value().steps[0].predicates[0];
  EXPECT_TRUE(pred.has_value_test);
  EXPECT_EQ(pred.op, CmpOp::kGe);
  EXPECT_EQ(pred.literal, "10");
  EXPECT_TRUE(pred.literal_is_number);
  ASSERT_EQ(pred.path.steps.size(), 2u);
}

TEST(ParserTest, SelfTestAst) {
  Result<PathExpr> result = ParseQuery("//a[.!=\"no\"]");
  ASSERT_TRUE(result.ok());
  const Predicate& pred = result.value().steps[0].predicates[0];
  EXPECT_TRUE(pred.self_test);
  EXPECT_TRUE(pred.has_value_test);
  EXPECT_EQ(pred.op, CmpOp::kNe);
  EXPECT_FALSE(pred.literal_is_number);
}

}  // namespace
}  // namespace twigm::xpath
