#include "core/union_query.h"

#include <algorithm>
#include <string>

#include "core/evaluator.h"
#include "gtest/gtest.h"

namespace twigm {
namespace {

using core::SplitUnionQuery;
using core::UnionQueryProcessor;
using core::VectorResultSink;

std::vector<xml::NodeId> RunUnion(std::string_view query,
                                  std::string_view doc) {
  VectorResultSink sink;
  auto proc = UnionQueryProcessor::Create(query, &sink);
  EXPECT_TRUE(proc.ok()) << proc.status().ToString();
  if (!proc.ok()) return {};
  EXPECT_TRUE(proc.value()->Consume({doc, false}).ok());
  EXPECT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  std::vector<xml::NodeId> ids = sink.TakeIds();
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(SplitUnionQueryTest, Splitting) {
  Result<std::vector<std::string>> one = SplitUnionQuery("//a/b");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value(), (std::vector<std::string>{"//a/b"}));

  Result<std::vector<std::string>> three =
      SplitUnionQuery("//a | /b[c] | //d//e");
  ASSERT_TRUE(three.ok());
  EXPECT_EQ(three.value(),
            (std::vector<std::string>{"//a", "/b[c]", "//d//e"}));
}

TEST(SplitUnionQueryTest, PipeInsideLiteralIsNotASeparator) {
  Result<std::vector<std::string>> split =
      SplitUnionQuery("//a[b=\"x|y\"] | //c");
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(split.value().size(), 2u);
  EXPECT_EQ(split.value()[0], "//a[b=\"x|y\"]");
  EXPECT_EQ(split.value()[1], "//c");
}

TEST(SplitUnionQueryTest, EmptyBranchRejected) {
  EXPECT_FALSE(SplitUnionQuery("//a | ").ok());
  EXPECT_FALSE(SplitUnionQuery("| //a").ok());
  EXPECT_FALSE(SplitUnionQuery("//a || //b").ok());
}

TEST(UnionQueryTest, DisjointBranches) {
  const std::string doc = "<r><a/><b/><c/></r>";  // r=1 a=2 b=3 c=4
  EXPECT_EQ(RunUnion("//a | //c", doc), (std::vector<xml::NodeId>{2, 4}));
}

TEST(UnionQueryTest, OverlappingBranchesDeduplicate) {
  const std::string doc = "<r><a><b/></a></r>";  // r=1 a=2 b=3
  // Both branches match b=3; it must be reported once.
  EXPECT_EQ(RunUnion("//b | //a/b", doc), (std::vector<xml::NodeId>{3}));
  EXPECT_EQ(RunUnion("//* | //a", doc), (std::vector<xml::NodeId>{1, 2, 3}));
}

TEST(UnionQueryTest, MixedEngineBranches) {
  const std::string doc =
      "<r><a><b/></a><c><d/></c></r>";  // r=1 a=2 b=3 c=4 d=5
  // PathM branch + BranchM branch + TwigM branch in one union.
  EXPECT_EQ(RunUnion("//b | /r/c[d] | //c[d]//d", doc),
            (std::vector<xml::NodeId>{3, 4, 5}));
}

TEST(UnionQueryTest, SingleBranchBehavesLikePlainQuery) {
  const std::string doc = "<r><a/><a/></r>";
  Result<std::vector<xml::NodeId>> plain = core::EvaluateToIds("//a", doc);
  ASSERT_TRUE(plain.ok());
  std::vector<xml::NodeId> expected = std::move(plain).value();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(RunUnion("//a", doc), expected);
}

TEST(UnionQueryTest, BranchErrorsSurface) {
  VectorResultSink sink;
  auto proc = UnionQueryProcessor::Create("//a | b[", &sink);
  ASSERT_FALSE(proc.ok());
}

TEST(UnionQueryTest, BranchCountAndStats) {
  VectorResultSink sink;
  auto proc = UnionQueryProcessor::Create("//a | //b", &sink);
  ASSERT_TRUE(proc.ok());
  EXPECT_EQ(proc.value()->branch_count(), 2u);
  ASSERT_TRUE(proc.value()->Consume({"<r><a/><b/><b/></r>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(proc.value()->results(), 3u);
  EXPECT_EQ(proc.value()->branch_stats(0).results, 1u);
  EXPECT_EQ(proc.value()->branch_stats(1).results, 2u);
}

TEST(UnionQueryTest, ResetClearsDedup) {
  VectorResultSink sink;
  auto proc = UnionQueryProcessor::Create("//a | //*", &sink);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({"<a/>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  proc.value()->Reset();
  ASSERT_TRUE(proc.value()->Consume({"<a/>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  // One result per document: the same id (1) both times.
  EXPECT_EQ(sink.ids().size(), 2u);
}

TEST(UnionQueryTest, ChunkedFeeding) {
  const std::string doc = "<r><a/><b><a/></b></r>";
  VectorResultSink sink;
  auto proc = UnionQueryProcessor::Create("//a | //b", &sink);
  ASSERT_TRUE(proc.ok());
  for (char c : doc) {
    ASSERT_TRUE(proc.value()->Consume({std::string_view(&c, 1), false}).ok());
  }
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(sink.ids().size(), 3u);
}

TEST(BomTest, Utf8BomIsSkipped) {
  const std::string doc = "\xEF\xBB\xBF<a><b/></a>";
  Result<std::vector<xml::NodeId>> ids = core::EvaluateToIds("//b", doc);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  EXPECT_EQ(ids.value().size(), 1u);
}

TEST(BomTest, BomSplitAcrossChunks) {
  core::VectorResultSink sink;
  auto proc = core::XPathStreamProcessor::Create("//b", &sink);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({"\xEF", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({"\xBB", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({"\xBF<a><b/></a>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(sink.ids().size(), 1u);
}

TEST(BomTest, NonBomGarbageStillFails) {
  EXPECT_FALSE(core::EvaluateToIds("//a", "\xEF\xBB<a/>").ok());
  EXPECT_FALSE(core::EvaluateToIds("//a", "junk<a/>").ok());
}

}  // namespace
}  // namespace twigm
