// Differential acceptance test for the sharded subscription service: over
// 100 DTD-generated documents, with subscribe/unsubscribe churn between
// documents, the server must deliver exactly the same
// (subscription, id, byte_offset) multiset as a single-threaded
// FilterEngine run over each document's active query set.
//
// MatchInfo::query_node is deliberately excluded from the comparison: it is
// an engine-local trie node id and differs between shard layouts.

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "data/book.h"
#include "dtd/dtd_generator.h"
#include "dtd/dtd_parser.h"
#include "filter/filter_engine.h"
#include "gtest/gtest.h"
#include "serve/server.h"

namespace twigm {
namespace {

using serve::Notification;
using serve::SubscriptionId;
using serve::SubscriptionServer;

// Element names of the Book DTD (src/data/book.cc).
const char* const kNames[] = {"book",    "title", "author", "section",
                              "p",       "figure", "image",  "nomatch"};

std::string RandomStep(Rng* rng) {
  std::string out =
      rng->Chance(0.12) ? "*" : kNames[rng->Below(std::size(kNames))];
  // Occasional predicate tails exercise the BranchM/TwigM demux path.
  if (rng->Chance(0.25)) {
    out += "[";
    if (rng->Chance(0.3)) out += "//";
    out += kNames[rng->Below(std::size(kNames) - 1)];
    if (rng->Chance(0.3)) {
      out += "/";
      out += kNames[rng->Below(std::size(kNames) - 1)];
    }
    out += "]";
  }
  return out;
}

std::string RandomQuery(Rng* rng) {
  const int steps = 1 + static_cast<int>(rng->Below(3));
  std::string out;
  for (int i = 0; i < steps; ++i) {
    out += rng->Chance(0.5) ? "//" : "/";
    out += RandomStep(rng);
  }
  return out;
}

using Delivery = std::tuple<SubscriptionId, xml::NodeId, uint64_t>;

class RecordingSink : public core::MultiQueryResultSink {
 public:
  explicit RecordingSink(const std::vector<SubscriptionId>* ids)
      : ids_(ids) {}
  void OnResult(size_t query_index, const core::MatchInfo& match) override {
    items.emplace_back((*ids_)[query_index], match.id, match.byte_offset);
  }
  std::vector<Delivery> items;

 private:
  const std::vector<SubscriptionId>* ids_;
};

/// Single-threaded FilterEngine over the active set — the ground truth.
std::vector<Delivery> Oracle(
    const std::map<SubscriptionId, std::string>& active,
    const std::string& doc) {
  std::vector<SubscriptionId> ids;
  std::vector<std::string> queries;
  for (const auto& [id, query] : active) {
    ids.push_back(id);
    queries.push_back(query);
  }
  RecordingSink sink(&ids);
  if (!queries.empty()) {
    auto engine = filter::FilterEngine::Create(queries, &sink);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    if (engine.ok()) {
      EXPECT_TRUE(engine.value()->Consume({doc, false}).ok());
      EXPECT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
    }
  }
  std::sort(sink.items.begin(), sink.items.end());
  return sink.items;
}

TEST(ServeDifferentialTest, MatchesSingleThreadedEngineUnderChurn) {
  auto dtd = dtd::ParseDtd(data::kBookDtd);
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();

  SubscriptionServer::Options options;
  options.num_shards = 3;
  options.ring_capacity = 64;  // small: exercises producer back-pressure
  options.notify_batch = 8;
  auto server = SubscriptionServer::Create(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Rng rng(0x5E44ED1F);
  // The test mirrors the registry: whatever it has subscribed (and not yet
  // unsubscribed) before a document's first Feed must be active for it.
  std::map<SubscriptionId, std::string> active;
  auto subscribe = [&](const std::string& query) {
    auto id = server.value()->Subscribe(query);
    ASSERT_TRUE(id.ok()) << query << ": " << id.status().ToString();
    active[id.value()] = query;
  };
  for (int i = 0; i < 24; ++i) subscribe(RandomQuery(&rng));

  auto stream = server.value()->OpenStream();
  uint64_t total = 0;
  for (int doc_index = 0; doc_index < 100; ++doc_index) {
    // Churn every 10th document boundary: drop one active subscription and
    // add two fresh queries. The effect lands exactly at the next document.
    if (doc_index > 0 && doc_index % 10 == 0 && !active.empty()) {
      auto victim = active.begin();
      std::advance(victim, rng.Below(active.size()));
      ASSERT_TRUE(server.value()->Unsubscribe(victim->first).ok());
      active.erase(victim);
      subscribe(RandomQuery(&rng));
      subscribe(RandomQuery(&rng));
    }

    dtd::GeneratorOptions gen;
    gen.seed = 0xB00C + static_cast<uint64_t>(doc_index);
    gen.number_levels = 8;
    gen.max_repeats = 3;
    auto doc = dtd::GenerateDocument(dtd.value(), "book", gen);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();

    ASSERT_TRUE(stream->FeedDocument(doc.value()).ok()) << "doc " << doc_index;

    std::vector<Notification> notifications;
    server.value()->Poll(&notifications);
    std::vector<Delivery> got;
    for (const Notification& n : notifications) {
      EXPECT_EQ(n.stream, stream->stream_id());
      EXPECT_TRUE(active.count(n.subscription))
          << "doc " << doc_index << ": notification for inactive subscription "
          << n.subscription;
      got.emplace_back(n.subscription, n.match.id, n.match.byte_offset);
    }
    std::sort(got.begin(), got.end());

    ASSERT_EQ(got, Oracle(active, doc.value())) << "doc " << doc_index;
    total += got.size();
  }
  // The workload must actually produce matches to be meaningful.
  EXPECT_GT(total, 1000u);
}

}  // namespace
}  // namespace twigm
