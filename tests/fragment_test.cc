// Tests for XML-fragment result delivery (footnote 3): the recorder must
// capture exactly the subtrees of result elements, across engines, nesting,
// eager emission (PathM), and undecided candidates.

#include "core/fragment.h"

#include <algorithm>
#include <string>

#include "core/evaluator.h"
#include "gtest/gtest.h"

namespace twigm {
namespace {

using core::EngineKind;
using core::EvaluatorOptions;
using core::VectorFragmentSink;
using core::XPathStreamProcessor;

struct FragmentRun {
  std::vector<core::VectorFragmentSink::Item> fragments;
  std::vector<xml::NodeId> ids;
};

FragmentRun RunFragments(std::string_view query, std::string_view doc,
                         EngineKind engine = EngineKind::kAuto,
                         size_t chunk = 0) {
  // VectorFragmentSink::wants_fragments() turns fragment capture on — no
  // separate creation path.
  VectorFragmentSink sink;
  EvaluatorOptions options;
  options.engine = engine;
  auto proc = XPathStreamProcessor::Create(query, &sink, options);
  EXPECT_TRUE(proc.ok()) << proc.status().ToString();
  FragmentRun run;
  if (!proc.ok()) return run;
  if (chunk == 0) {
    EXPECT_TRUE(proc.value()->Consume({doc, false}).ok());
  } else {
    for (size_t pos = 0; pos < doc.size(); pos += chunk) {
      EXPECT_TRUE(proc.value()->Consume({doc.substr(pos, chunk), false}).ok());
    }
  }
  EXPECT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  run.fragments = sink.items();
  run.ids = sink.ids();
  return run;
}

TEST(FragmentTest, SimpleSubtree) {
  const FragmentRun run =
      RunFragments("//b", "<a><b><c>x</c></b></a>");
  ASSERT_EQ(run.fragments.size(), 1u);
  EXPECT_EQ(run.fragments[0].id, 2u);
  EXPECT_EQ(run.fragments[0].xml, "<b><c>x</c></b>");
}

TEST(FragmentTest, AttributesPreserved) {
  const FragmentRun run =
      RunFragments("//b", "<a><b k=\"v\" m=\"&lt;\"/></a>");
  ASSERT_EQ(run.fragments.size(), 1u);
  EXPECT_EQ(run.fragments[0].xml, "<b k=\"v\" m=\"&lt;\"></b>");
}

TEST(FragmentTest, TextEscapedOnOutput) {
  const FragmentRun run =
      RunFragments("//b", "<a><b>1 &lt; 2 &amp; 3</b></a>");
  ASSERT_EQ(run.fragments.size(), 1u);
  EXPECT_EQ(run.fragments[0].xml, "<b>1 &lt; 2 &amp; 3</b>");
}

TEST(FragmentTest, PredicateDecidedAfterSubtreeCloses) {
  // Result proven only when <d> appears, long after </b>.
  const FragmentRun run =
      RunFragments("//a[d]/b", "<a><b><c/></b><d/></a>",
                   EngineKind::kTwigM);
  ASSERT_EQ(run.fragments.size(), 1u);
  EXPECT_EQ(run.fragments[0].xml, "<b><c></c></b>");
}

TEST(FragmentTest, FailedCandidatesProduceNothing) {
  const FragmentRun run =
      RunFragments("//a[x]/b", "<a><b><c/></b><d/></a>",
                   EngineKind::kTwigM);
  EXPECT_TRUE(run.fragments.empty());
  EXPECT_TRUE(run.ids.empty());
}

TEST(FragmentTest, EagerPathMEmission) {
  // PathM announces the result at startElement; the fragment must still be
  // complete when delivered.
  const FragmentRun run =
      RunFragments("//a/b", "<a><b><c>deep</c></b></a>", EngineKind::kPathM);
  ASSERT_EQ(run.fragments.size(), 1u);
  EXPECT_EQ(run.fragments[0].xml, "<b><c>deep</c></b>");
  EXPECT_EQ(run.ids.size(), 1u);
}

TEST(FragmentTest, NestedResults) {
  // Both b's match //b; the outer fragment contains the inner one.
  const FragmentRun run = RunFragments("//b", "<a><b>x<b>y</b></b></a>");
  ASSERT_EQ(run.fragments.size(), 2u);
  // Inner completes first.
  EXPECT_EQ(run.fragments[0].xml, "<b>y</b>");
  EXPECT_EQ(run.fragments[1].xml, "<b>x<b>y</b></b>");
}

TEST(FragmentTest, BranchMFragments) {
  const FragmentRun run = RunFragments(
      "/a[d]/b", "<a><b><c/></b><d/></a>", EngineKind::kBranchM);
  ASSERT_EQ(run.fragments.size(), 1u);
  EXPECT_EQ(run.fragments[0].xml, "<b><c></c></b>");
}

TEST(FragmentTest, MultipleResultsInOrder) {
  const FragmentRun run =
      RunFragments("//b", "<a><b>1</b><b>2</b><b>3</b></a>");
  ASSERT_EQ(run.fragments.size(), 3u);
  EXPECT_EQ(run.fragments[0].xml, "<b>1</b>");
  EXPECT_EQ(run.fragments[1].xml, "<b>2</b>");
  EXPECT_EQ(run.fragments[2].xml, "<b>3</b>");
}

TEST(FragmentTest, ChunkedFeedingIdentical) {
  const std::string doc =
      "<a><b k=\"1\">text<c/>more</b><d/><b>two</b></a>";
  const FragmentRun whole = RunFragments("//a[d]//b", doc);
  for (size_t chunk : {1u, 3u, 5u}) {
    const FragmentRun chunked =
        RunFragments("//a[d]//b", doc, EngineKind::kAuto, chunk);
    ASSERT_EQ(chunked.fragments.size(), whole.fragments.size());
    for (size_t i = 0; i < whole.fragments.size(); ++i) {
      EXPECT_EQ(chunked.fragments[i].xml, whole.fragments[i].xml);
    }
  }
}

TEST(FragmentTest, IdsSinkReceivesSameResults) {
  const FragmentRun run =
      RunFragments("//b[c]", "<a><b><c/></b><b/></a>");
  ASSERT_EQ(run.fragments.size(), 1u);
  ASSERT_EQ(run.ids.size(), 1u);
  EXPECT_EQ(run.fragments[0].id, run.ids[0]);
}

TEST(FragmentTest, ValueTestFragments) {
  const FragmentRun run = RunFragments(
      "//s[.=\"keep\"]", "<r><s>keep</s><s>drop</s></r>");
  ASSERT_EQ(run.fragments.size(), 1u);
  EXPECT_EQ(run.fragments[0].xml, "<s>keep</s>");
}

TEST(FragmentTest, ResetAllowsReuse) {
  VectorFragmentSink fragments;
  auto proc = XPathStreamProcessor::Create("//b", &fragments);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({"<a><b>1</b></a>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  proc.value()->Reset();
  ASSERT_TRUE(proc.value()->Consume({"<a><b>2</b></a>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  ASSERT_EQ(fragments.items().size(), 2u);
  EXPECT_EQ(fragments.items()[1].xml, "<b>2</b>");
}

TEST(FragmentTest, NullObserverRejected) {
  auto proc = XPathStreamProcessor::Create("//b", nullptr);
  ASSERT_FALSE(proc.ok());
  EXPECT_EQ(proc.status().code(), StatusCode::kInvalidArgument);
}

TEST(FragmentTest, CaptureForcedByOption) {
  // An observer without wants_fragments() still gets OnFragment when the
  // option forces capture on.
  class Capture : public core::MatchObserver {
   public:
    void OnResult(const core::MatchInfo&) override {}
    void OnFragment(xml::NodeId, std::string_view xml) override {
      fragments.emplace_back(xml);
    }
    std::vector<std::string> fragments;
  };
  Capture capture;
  EvaluatorOptions options;
  options.capture_fragments = true;
  auto proc = XPathStreamProcessor::Create("//b", &capture, options);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({"<a><b>x</b></a>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  ASSERT_EQ(capture.fragments.size(), 1u);
  EXPECT_EQ(capture.fragments[0], "<b>x</b>");
}

TEST(FragmentTest, DeepRecursiveCandidates) {
  // Every a is a candidate and a result; fragments nest 50 deep.
  std::string doc;
  const int n = 50;
  for (int i = 0; i < n; ++i) doc += "<a>";
  for (int i = 0; i < n; ++i) doc += "</a>";
  const FragmentRun run = RunFragments("//a", doc, EngineKind::kTwigM);
  ASSERT_EQ(run.fragments.size(), static_cast<size_t>(n));
  // Innermost result is the empty chain.
  EXPECT_EQ(run.fragments[0].xml, "<a></a>");
  EXPECT_EQ(run.fragments.back().xml.size(), static_cast<size_t>(7 * n));
}

}  // namespace
}  // namespace twigm
