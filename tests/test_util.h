// Shared helpers for the twigm test suites.

#ifndef TWIGM_TESTS_TEST_UTIL_H_
#define TWIGM_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "core/evaluator.h"
#include "gtest/gtest.h"
#include "xml/sax_event.h"

namespace twigm::testing {

/// Evaluates `query` over `document` with the given engine and returns the
/// result ids sorted ascending (document order). Fails the test on error.
inline std::vector<xml::NodeId> MustEvaluate(
    std::string_view query, std::string_view document,
    core::EngineKind engine = core::EngineKind::kTwigM) {
  core::EvaluatorOptions options;
  options.engine = engine;
  Result<std::vector<xml::NodeId>> result =
      core::EvaluateToIds(query, document, options);
  EXPECT_TRUE(result.ok()) << "query '" << query
                           << "': " << result.status().ToString();
  std::vector<xml::NodeId> ids =
      result.ok() ? std::move(result).value() : std::vector<xml::NodeId>{};
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Shorthand for building expected id vectors.
inline std::vector<xml::NodeId> Ids(std::initializer_list<xml::NodeId> ids) {
  return std::vector<xml::NodeId>(ids);
}

}  // namespace twigm::testing

#endif  // TWIGM_TESTS_TEST_UTIL_H_
