// Tests for the TwigM machine itself, including the paper's running
// examples (Figures 1–4) and the compactness claims of section 3.

#include "core/twig_machine.h"

#include <string>

#include "core/evaluator.h"
#include "data/adversarial.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/sax_parser.h"

namespace twigm {
namespace {

using core::EngineKind;
using core::TwigMachine;
using core::TwigMachineOptions;
using core::VectorResultSink;
using testing::Ids;
using testing::MustEvaluate;

// Runs TwigM over `document` and returns (sorted ids, stats).
struct TwigRun {
  std::vector<xml::NodeId> ids;
  core::EngineStats stats;
};

TwigRun RunTwig(std::string_view query, std::string_view document,
                TwigMachineOptions options = TwigMachineOptions()) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  VectorResultSink sink;
  Result<std::unique_ptr<TwigMachine>> machine =
      TwigMachine::Create(tree.value(), &sink, options);
  EXPECT_TRUE(machine.ok()) << machine.status().ToString();
  xml::EventDriver driver(machine.value().get());
  xml::SaxParser parser(&driver);
  EXPECT_TRUE(parser.ParseAll(document).ok());
  TwigRun run;
  run.ids = sink.TakeIds();
  std::sort(run.ids.begin(), run.ids.end());
  run.stats = machine.value()->stats();
  return run;
}

TEST(TwigMachineTest, SingleNodeQuery) {
  EXPECT_EQ(MustEvaluate("//a", "<a><a/><b><a/></b></a>"), Ids({1, 2, 4}));
  EXPECT_EQ(MustEvaluate("/a", "<a><a/></a>"), Ids({1}));
  EXPECT_EQ(MustEvaluate("/b", "<a><b/></a>"), Ids({}));
}

TEST(TwigMachineTest, ChildVsDescendant) {
  const std::string doc = "<a><b><c/></b><c/></a>";  // ids: a=1 b=2 c=3 c=4
  EXPECT_EQ(MustEvaluate("/a/c", doc), Ids({4}));
  EXPECT_EQ(MustEvaluate("/a//c", doc), Ids({3, 4}));
  EXPECT_EQ(MustEvaluate("/a/b/c", doc), Ids({3}));
}

TEST(TwigMachineTest, SimplePredicate) {
  // ids: a=1 b=2 d=3 b=4
  const std::string doc = "<a><b><d/></b><b/></a>";
  EXPECT_EQ(MustEvaluate("//b[d]", doc), Ids({2}));
  EXPECT_EQ(MustEvaluate("//a[b]", doc), Ids({1}));
  EXPECT_EQ(MustEvaluate("//b[x]", doc), Ids({}));
}

TEST(TwigMachineTest, PredicateResolvedAfterCandidate) {
  // The candidate (c) arrives before the predicate witness (d): the paper's
  // core buffering scenario.
  const std::string doc = "<a><b><c/></b><d/></a>";  // a=1 b=2 c=3 d=4
  EXPECT_EQ(MustEvaluate("//a[d]/b/c", doc), Ids({3}));
  EXPECT_EQ(MustEvaluate("//a[x]/b/c", doc), Ids({}));
}

TEST(TwigMachineTest, PaperFigure1Query) {
  // Q1 = //a[d]//b[e]//c on the Fig. 1 document family.
  for (int n : {1, 2, 3, 5, 10}) {
    data::AdversarialOptions options;
    options.n = n;
    const std::string doc = data::GenerateAdversarial(options);
    // Pre-order ids: a_1..a_n = 1..n, b_1..b_n = n+1..2n, c = 2n+1.
    const xml::NodeId c_id = static_cast<xml::NodeId>(2 * n + 1);
    EXPECT_EQ(MustEvaluate("//a[d]//b[e]//c", doc), Ids({c_id})) << "n=" << n;
  }
}

TEST(TwigMachineTest, PaperFigure1FailingPredicates) {
  data::AdversarialOptions options;
  options.n = 4;
  options.with_d = false;
  EXPECT_EQ(MustEvaluate("//a[d]//b[e]//c",
                         data::GenerateAdversarial(options)),
            Ids({}));
  options.with_d = true;
  options.with_e = false;
  EXPECT_EQ(MustEvaluate("//a[d]//b[e]//c",
                         data::GenerateAdversarial(options)),
            Ids({}));
}

TEST(TwigMachineTest, CompactEncodingStoresLinearEntries) {
  // Section 3.3: n² pattern matches encoded in ~2n stack entries. Verify
  // the peak entry count grows linearly, not quadratically.
  data::AdversarialOptions options;
  options.n = 50;
  const TwigRun run =
      RunTwig("//a[d]//b[e]//c", data::GenerateAdversarial(options));
  ASSERT_EQ(run.ids.size(), 1u);
  // a-stack holds n, b-stack n, c/e/d transiently: well under 3n, far
  // from n² = 2500.
  EXPECT_LE(run.stats.peak_stack_entries, static_cast<uint64_t>(3 * 50 + 5));
  EXPECT_GE(run.stats.peak_stack_entries, static_cast<uint64_t>(2 * 50));
}

TEST(TwigMachineTest, ChildAxisVariantOfFigure1) {
  // //a[d]/b[e]//c — only (a_n, b_1) can match the a/b edge.
  data::AdversarialOptions options;
  options.n = 3;
  const std::string doc = data::GenerateAdversarial(options);
  // e hangs off b_1 but d hangs off a_1, not a_n: no result.
  EXPECT_EQ(MustEvaluate("//a[d]/b[e]//c", doc), Ids({}));
  // Without the d requirement the chain (a_3, b_1, c) matches.
  EXPECT_EQ(MustEvaluate("//a/b[e]//c", doc), Ids({7}));
}

TEST(TwigMachineTest, RecursiveDataDuplicateElimination) {
  // c participates in matches under both a's; it must be returned once.
  const std::string doc = "<a><a><c/></a></a>";  // a=1 a=2 c=3
  EXPECT_EQ(MustEvaluate("//a//c", doc), Ids({3}));
  EXPECT_EQ(MustEvaluate("//a[c]//c", doc), Ids({3}));
}

TEST(TwigMachineTest, RootRecursionEmitsEachResultOnce) {
  // Both a's are roots of satisfied matches holding the same candidate.
  const std::string doc = "<a><a><b/><c/></a></a>";  // a=1 a=2 b=3 c=4
  EXPECT_EQ(MustEvaluate("//a[b]//c", doc), Ids({4}));
}

TEST(TwigMachineTest, MultiplePredicatesOnOneNode) {
  const std::string doc =
      "<r><s><t/><u/><v/></s><s><t/></s></r>";  // r=1 s=2 t=3 u=4 v=5 s=6 t=7
  EXPECT_EQ(MustEvaluate("//s[t][u]/v", doc), Ids({5}));
  EXPECT_EQ(MustEvaluate("//s[t][u][v]", doc), Ids({2}));
  EXPECT_EQ(MustEvaluate("//s[t][x]", doc), Ids({}));
}

TEST(TwigMachineTest, NestedPredicates) {
  const std::string doc =
      "<r><s><t><w/></t></s><s><t/></s></r>";  // r=1 s=2 t=3 w=4 s=5 t=6
  EXPECT_EQ(MustEvaluate("//s[t[w]]", doc), Ids({2}));
  EXPECT_EQ(MustEvaluate("//s[t]", doc), Ids({2, 5}));
}

TEST(TwigMachineTest, PathPredicates) {
  const std::string doc = "<r><s><t><w/></t></s></r>";
  EXPECT_EQ(MustEvaluate("//s[t/w]", doc), Ids({2}));
  EXPECT_EQ(MustEvaluate("//r[s//w]", doc), Ids({1}));
  EXPECT_EQ(MustEvaluate("//r[//w]", doc), Ids({1}));
}

TEST(TwigMachineTest, WildcardQueries) {
  const std::string doc = "<a><b><c/></b><d><c/></d></a>";  // 1 2 3 4 5
  EXPECT_EQ(MustEvaluate("//a/*/c", doc), Ids({3, 5}));
  EXPECT_EQ(MustEvaluate("//*[c]", doc), Ids({2, 4}));
  EXPECT_EQ(MustEvaluate("//*", doc), Ids({1, 2, 3, 4, 5}));
  EXPECT_EQ(MustEvaluate("/*/*", doc), Ids({2, 4}));
}

TEST(TwigMachineTest, CollapsedStarDistances) {
  const std::string doc =
      "<a><x><b/></x><b/><y><z><b/></z></y></a>";  // a=1 x=2 b=3 b=4 y=5 z=6 b=7
  EXPECT_EQ(MustEvaluate("//a/*/b", doc), Ids({3}));
  EXPECT_EQ(MustEvaluate("//a/*/*/b", doc), Ids({7}));
  EXPECT_EQ(MustEvaluate("//a/*//b", doc), Ids({3, 7}));
  EXPECT_EQ(MustEvaluate("//a//*/b", doc), Ids({3, 7}));
}

TEST(TwigMachineTest, AttributePredicates) {
  const std::string doc =
      "<r><s id=\"1\"><t/></s><s><t/></s></r>";  // r=1 s=2 t=3 s=4 t=5
  EXPECT_EQ(MustEvaluate("//s[@id]/t", doc), Ids({3}));
  EXPECT_EQ(MustEvaluate("//s[@id=\"1\"]/t", doc), Ids({3}));
  EXPECT_EQ(MustEvaluate("//s[@id=\"2\"]/t", doc), Ids({}));
  EXPECT_EQ(MustEvaluate("//s[@missing]/t", doc), Ids({}));
}

TEST(TwigMachineTest, AttributeValueComparisons) {
  const std::string doc = "<r><s n=\"10\"/><s n=\"3\"/><s n=\"x\"/></r>";
  EXPECT_EQ(MustEvaluate("//s[@n>5]", doc), Ids({2}));
  EXPECT_EQ(MustEvaluate("//s[@n<5]", doc), Ids({3}));
  EXPECT_EQ(MustEvaluate("//s[@n!=\"3\"]", doc), Ids({2, 4}));
}

TEST(TwigMachineTest, ElementValueTests) {
  const std::string doc =
      "<r><s><t>yes</t></s><s><t>no</t></s><s><t>yes</t><u/></s></r>";
  // ids: r=1 s=2 t=3 s=4 t=5 s=6 t=7 u=8
  EXPECT_EQ(MustEvaluate("//s[t=\"yes\"]", doc), Ids({2, 6}));
  EXPECT_EQ(MustEvaluate("//s[t=\"yes\"][u]", doc), Ids({6}));
  EXPECT_EQ(MustEvaluate("//s[t!=\"yes\"]", doc), Ids({4}));
}

TEST(TwigMachineTest, SelfValueTest) {
  const std::string doc = "<r><s>alpha</s><s>beta</s></r>";
  EXPECT_EQ(MustEvaluate("//s[.=\"alpha\"]", doc), Ids({2}));
  EXPECT_EQ(MustEvaluate("//s[.!=\"alpha\"]", doc), Ids({3}));
}

TEST(TwigMachineTest, NumericValueTests) {
  const std::string doc = "<r><p><v>10</v></p><p><v>2</v></p></r>";
  EXPECT_EQ(MustEvaluate("//p[v>=10]", doc), Ids({2}));
  EXPECT_EQ(MustEvaluate("//p[v<10]", doc), Ids({4}));
  EXPECT_EQ(MustEvaluate("//p[v=2]", doc), Ids({4}));
}

TEST(TwigMachineTest, ValueTestWithMixedContentUsesDirectText) {
  // Direct text of s is "ab" (the inner element's text is not included).
  const std::string doc = "<r><s>a<t>X</t>b</s></r>";
  EXPECT_EQ(MustEvaluate("//s[.=\"ab\"]", doc), Ids({2}));
  EXPECT_EQ(MustEvaluate("//s[.=\"aXb\"]", doc), Ids({}));
}

TEST(TwigMachineTest, ValueTestOnRecursiveTags) {
  // Nested same-tag elements with value tests: stack entries must keep
  // their text separate.
  const std::string doc = "<s>outer<s>inner</s></s>";
  EXPECT_EQ(MustEvaluate("//s[.=\"inner\"]", doc), Ids({2}));
  EXPECT_EQ(MustEvaluate("//s[.=\"outer\"]", doc), Ids({1}));
}

TEST(TwigMachineTest, SolInsidePredicateScope) {
  // Return node has predicates itself.
  const std::string doc = "<r><s><t/></s><s/></r>";  // r=1 s=2 t=3 s=4
  EXPECT_EQ(MustEvaluate("//s[t]", doc), Ids({2}));
  EXPECT_EQ(MustEvaluate("/r[s]", doc), Ids({1}));
}

TEST(TwigMachineTest, DeepRecursionStress) {
  // 200 nested a's; //a//a//a must return all but the two outermost.
  std::string doc;
  const int n = 200;
  for (int i = 0; i < n; ++i) doc += "<a>";
  for (int i = 0; i < n; ++i) doc += "</a>";
  std::vector<xml::NodeId> expected;
  for (int i = 3; i <= n; ++i) expected.push_back(static_cast<xml::NodeId>(i));
  EXPECT_EQ(MustEvaluate("//a//a//a", doc), expected);
}

TEST(TwigMachineTest, PruneOptionDoesNotChangeResults) {
  const std::string doc =
      "<r><s id=\"1\"><t/><c/></s><s><t/><c/></s></r>";
  TwigMachineOptions prune_on;
  prune_on.prune_static_failures = true;
  TwigMachineOptions prune_off;
  prune_off.prune_static_failures = false;
  const TwigRun on = RunTwig("//s[@id][t]/c", doc, prune_on);
  const TwigRun off = RunTwig("//s[@id][t]/c", doc, prune_off);
  EXPECT_EQ(on.ids, off.ids);
  // Pruning must not push entries for the s without @id.
  EXPECT_LT(on.stats.pushes, off.stats.pushes);
}

TEST(TwigMachineTest, StatsCountEventsAndResults) {
  const TwigRun run = RunTwig("//a//c", "<a><b/><c/><c/></a>");
  EXPECT_EQ(run.stats.start_events, 4u);
  EXPECT_EQ(run.stats.end_events, 4u);
  EXPECT_EQ(run.stats.results, 2u);
  EXPECT_GT(run.stats.pushes, 0u);
  EXPECT_EQ(run.stats.pushes, run.stats.pops);
}

TEST(TwigMachineTest, ResetAllowsReuse) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a/b");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  Result<std::unique_ptr<TwigMachine>> machine =
      TwigMachine::Create(tree.value(), &sink);
  ASSERT_TRUE(machine.ok());
  for (int round = 0; round < 2; ++round) {
    machine.value()->Reset();
    xml::EventDriver driver(machine.value().get());
    xml::SaxParser parser(&driver);
    ASSERT_TRUE(parser.ParseAll("<a><b/></a>").ok());
  }
  EXPECT_EQ(sink.ids().size(), 2u);  // one result per round
}

TEST(TwigMachineTest, EmptyDocumentNoResults) {
  EXPECT_EQ(MustEvaluate("//a/b", "<root/>"), Ids({}));
}

TEST(TwigMachineTest, ResultsEmittedIncrementally) {
  // With a predicate on the root, results surface at the root's end tag —
  // but candidates from disjoint subtrees must all be present.
  const std::string doc =
      "<r><x/><s><c/></s><s><c/></s></r>";  // r=1 x=2 s=3 c=4 s=5 c=6
  EXPECT_EQ(MustEvaluate("//r[x]//c", doc), Ids({4, 6}));
}

}  // namespace
}  // namespace twigm
