// Proves the zero-allocation steady state: after one warm pass, streaming
// the same document again through a Reset() processor performs no heap
// allocations at all — the parser buffers, interner, pooled stacks and
// candidate vectors all reuse their capacity. Links twigm_alloc_hook, which
// replaces operator new/delete with counting versions (this is why these
// assertions live in their own binary).

#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/multi_query.h"
#include "core/result_sink.h"
#include "dtd/dtd_generator.h"
#include "dtd/dtd_parser.h"
#include "filter/filter_engine.h"
#include "gtest/gtest.h"
#include "obs/alloc_hook.h"

namespace twigm {
namespace {

std::string MakeDocument(uint64_t seed) {
  Result<dtd::Dtd> dtd = dtd::ParseDtd(R"(
    <!ELEMENT book (title, section*)>
    <!ELEMENT section (title?, (section | p | figure)*)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT p (#PCDATA)>
    <!ELEMENT figure EMPTY>
    <!ATTLIST figure id CDATA #REQUIRED>
  )");
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  dtd::GeneratorOptions options;
  options.seed = seed;
  options.number_levels = 12;
  options.max_repeats = 4;
  Result<std::string> doc = dtd::GenerateDocument(dtd.value(), "book",
                                                  options);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.value();
}

TEST(HotpathAllocTest, HookIsLinked) {
  ASSERT_TRUE(obs::AllocHookActive())
      << "hotpath_alloc_test must link twigm_alloc_hook";
}

TEST(HotpathAllocTest, TwigMachineSteadyStateAllocatesNothing) {
  const std::string doc = MakeDocument(7);
  core::CountingResultSink sink;
  core::EvaluatorOptions options;
  options.engine = core::EngineKind::kTwigM;
  Result<std::unique_ptr<core::XPathStreamProcessor>> proc =
      core::XPathStreamProcessor::Create("//section[title]//figure", &sink,
                                         options);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  core::XPathStreamProcessor& p = *proc.value();

  auto stream_once = [&]() {
    Status s = p.Consume({doc, false});
    if (s.ok()) s = p.Consume({std::string_view(), true});
    ASSERT_TRUE(s.ok()) << s.ToString();
  };

  stream_once();  // warm: pools, interner, stacks grow here
  const uint64_t warm_results = sink.count();
  for (int pass = 0; pass < 3; ++pass) {
    p.Reset();
    const uint64_t before = obs::AllocHookNewCalls();
    stream_once();
    EXPECT_EQ(obs::AllocHookNewCalls() - before, 0u) << "pass " << pass;
  }
  // Reset + re-stream also reproduced the results each pass.
  EXPECT_EQ(sink.count(), warm_results * 4);
}

TEST(HotpathAllocTest, MultiQuerySteadyStateAllocatesNothing) {
  const std::string doc = MakeDocument(11);
  class CountSink : public core::MultiQueryResultSink {
   public:
    void OnResult(size_t, const core::MatchInfo&) override { ++count; }
    uint64_t count = 0;
  };
  CountSink sink;
  const std::vector<std::string> queries = {
      "//section/title", "//section[p]//figure", "/book//section[figure]"};
  Result<std::unique_ptr<core::MultiQueryProcessor>> proc =
      core::MultiQueryProcessor::Create(queries, &sink);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  core::MultiQueryProcessor& p = *proc.value();

  auto stream_once = [&]() {
    Status s = p.Consume({doc, false});
    if (s.ok()) s = p.Consume({std::string_view(), true});
    ASSERT_TRUE(s.ok()) << s.ToString();
  };

  stream_once();
  for (int pass = 0; pass < 3; ++pass) {
    p.Reset();
    const uint64_t before = obs::AllocHookNewCalls();
    stream_once();
    EXPECT_EQ(obs::AllocHookNewCalls() - before, 0u) << "pass " << pass;
  }
}

TEST(HotpathAllocTest, FilterEngineSteadyStateAllocatesNothing) {
  const std::string doc = MakeDocument(13);
  class CountSink : public core::MultiQueryResultSink {
   public:
    void OnResult(size_t, const core::MatchInfo&) override { ++count; }
    uint64_t count = 0;
  };
  CountSink sink;
  const std::vector<std::string> queries = {
      "//section/title", "//section//figure", "/book/section",
      "//*/figure",      "//section[p]",      "/book//p"};
  Result<std::unique_ptr<filter::FilterEngine>> engine =
      filter::FilterEngine::Create(queries, &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  filter::FilterEngine& e = *engine.value();

  auto stream_once = [&]() {
    Status s = e.Consume({doc, false});
    if (s.ok()) s = e.Consume({std::string_view(), true});
    ASSERT_TRUE(s.ok()) << s.ToString();
  };

  stream_once();
  for (int pass = 0; pass < 3; ++pass) {
    e.Reset();
    const uint64_t before = obs::AllocHookNewCalls();
    stream_once();
    EXPECT_EQ(obs::AllocHookNewCalls() - before, 0u) << "pass " << pass;
  }
}

// Capacity survives document *switches*, not just re-streams of the same
// bytes: after warming on the largest document, streaming a mix of smaller
// documents allocates nothing either (same tag vocabulary, smaller shapes).
TEST(HotpathAllocTest, ResetRetainsCapacityAcrossDocuments) {
  std::vector<std::string> docs;
  for (uint64_t seed : {21, 22, 23, 24}) docs.push_back(MakeDocument(seed));

  core::CountingResultSink sink;
  core::EvaluatorOptions options;
  options.engine = core::EngineKind::kTwigM;
  Result<std::unique_ptr<core::XPathStreamProcessor>> proc =
      core::XPathStreamProcessor::Create("//section[title]//figure", &sink,
                                         options);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  core::XPathStreamProcessor& p = *proc.value();

  auto stream = [&](const std::string& doc) {
    Status s = p.Consume({doc, false});
    if (s.ok()) s = p.Consume({std::string_view(), true});
    ASSERT_TRUE(s.ok()) << s.ToString();
  };

  // Warm on every document once: each may have the deepest recursion or the
  // longest text run, any of which can grow a buffer.
  for (const std::string& doc : docs) {
    p.Reset();
    stream(doc);
  }
  // Second cycle through all documents: everything is at capacity.
  for (size_t i = 0; i < docs.size(); ++i) {
    p.Reset();
    const uint64_t before = obs::AllocHookNewCalls();
    stream(docs[i]);
    EXPECT_EQ(obs::AllocHookNewCalls() - before, 0u) << "doc " << i;
  }
}

}  // namespace
}  // namespace twigm
