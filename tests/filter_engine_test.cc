// Tests for the shared-prefix filter engine (src/filter/): trie
// construction, the sharing-sensitive edge cases (duplicates, prefix
// queries, '*' vs tag at the same step), tail demultiplexing, and a
// randomized differential test against N independent XPathStreamProcessor
// runs and against MultiQueryProcessor — the correctness contract is
// emission-set equality per query.

#include "filter/filter_engine.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/multi_query.h"
#include "filter/filter_index.h"
#include "gtest/gtest.h"
#include "xml/xml_writer.h"

namespace twigm {
namespace {

using core::EngineKind;
using core::VectorMultiQuerySink;
using filter::FilterEngine;
using filter::FilterIndex;

std::vector<std::vector<xml::NodeId>> RunFilter(
    const std::vector<std::string>& queries, std::string_view doc,
    const FilterEngine** engine_out = nullptr) {
  static std::unique_ptr<FilterEngine> keep_alive;  // for engine_out users
  VectorMultiQuerySink sink;
  auto engine = FilterEngine::Create(queries, &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<std::vector<xml::NodeId>> out(queries.size());
  if (!engine.ok()) return out;
  EXPECT_TRUE(engine.value()->Consume({doc, false}).ok());
  EXPECT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
  for (const auto& item : sink.items()) {
    out[item.query_index].push_back(item.id);
  }
  for (auto& ids : out) std::sort(ids.begin(), ids.end());
  if (engine_out != nullptr) {
    keep_alive = std::move(engine).value();
    *engine_out = keep_alive.get();
  }
  return out;
}

std::vector<xml::NodeId> SingleQuery(const std::string& query,
                                     std::string_view doc) {
  Result<std::vector<xml::NodeId>> ids = core::EvaluateToIds(query, doc);
  EXPECT_TRUE(ids.ok()) << query << ": " << ids.status().ToString();
  std::vector<xml::NodeId> out =
      ids.ok() ? std::move(ids).value() : std::vector<xml::NodeId>{};
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FilterIndexTest, SharesCommonPrefixes) {
  auto index = FilterIndex::Build(
      {"//a/b/c", "//a/b/d", "//a/b", "//a/b/c", "/a/b"});
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  const auto& stats = index.value().stats();
  // //a/b/c + //a/b/d + //a/b + //a/b/c + /a/b = 3+3+2+3+2 = 13 steps.
  EXPECT_EQ(stats.total_steps, 13u);
  // Distinct nodes: //a, //a/b, //a/b/c, //a/b/d, /a, /a/b.
  EXPECT_EQ(stats.trie_node_count, 6u);
  EXPECT_EQ(stats.linear_query_count, 5u);
}

TEST(FilterIndexTest, PlansClassifyQueries) {
  VectorMultiQuerySink sink;
  auto engine = FilterEngine::Create(
      {"//a/b", "//a/b[c]/d", "/a/b[c]", "//a[b]", "//a/*[b]/c"}, &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(engine.value()->plan(0).linear);
  // //a/b[c]/d shares trunk //a, tail rooted at b.
  EXPECT_FALSE(engine.value()->plan(1).linear);
  EXPECT_EQ(engine.value()->plan(1).trunk_steps, 1);
  EXPECT_EQ(engine.value()->plan(1).tail_kind, EngineKind::kTwigM);
  // Child-only, wildcard-free: BranchM tail.
  EXPECT_EQ(engine.value()->plan(2).trunk_steps, 1);
  EXPECT_EQ(engine.value()->plan(2).tail_kind, EngineKind::kBranchM);
  // Predicate on the first step: no trunk.
  EXPECT_EQ(engine.value()->plan(3).trunk_steps, 0);
  EXPECT_EQ(engine.value()->plan(3).anchor, -1);
  // Wildcard tail root still shares the //a trunk.
  EXPECT_EQ(engine.value()->plan(4).trunk_steps, 1);
  EXPECT_EQ(engine.value()->plan(4).tail_kind, EngineKind::kTwigM);
}

TEST(FilterEngineTest, DuplicateQueriesEachGetResults) {
  const std::string doc = "<a><b/><b/></a>";  // a=1 b=2 b=3
  const auto results = RunFilter({"//b", "//b", "//b"}, doc);
  for (int q = 0; q < 3; ++q) {
    EXPECT_EQ(results[static_cast<size_t>(q)],
              (std::vector<xml::NodeId>{2, 3}));
  }
}

TEST(FilterEngineTest, QueryPrefixOfAnother) {
  // //a accepts at an interior trie node of //a/b.
  const std::string doc = "<a><a><b/></a><c/></a>";  // a=1 a=2 b=3 c=4
  const auto results = RunFilter({"//a", "//a/b", "//a/b/c"}, doc);
  EXPECT_EQ(results[0], (std::vector<xml::NodeId>{1, 2}));
  EXPECT_EQ(results[1], (std::vector<xml::NodeId>{3}));
  EXPECT_TRUE(results[2].empty());
}

TEST(FilterEngineTest, WildcardAndTagOverlapAtSameStep) {
  const std::string doc = "<a><b><d/></b><c><d/></c></a>";  // 1 2 3 4 5
  const auto results =
      RunFilter({"//a/*/d", "//a/b/d", "/a/*", "//*"}, doc);
  EXPECT_EQ(results[0], (std::vector<xml::NodeId>{3, 5}));
  EXPECT_EQ(results[1], (std::vector<xml::NodeId>{3}));
  EXPECT_EQ(results[2], (std::vector<xml::NodeId>{2, 4}));
  EXPECT_EQ(results[3], (std::vector<xml::NodeId>{1, 2, 3, 4, 5}));
}

TEST(FilterEngineTest, ChildVsDescendantAreDistinctTrieNodes) {
  const std::string doc = "<a><x><b/></x><b/></a>";  // a=1 x=2 b=3 b=4
  const auto results = RunFilter({"/a/b", "//a//b", "/a//b"}, doc);
  EXPECT_EQ(results[0], (std::vector<xml::NodeId>{4}));
  EXPECT_EQ(results[1], (std::vector<xml::NodeId>{3, 4}));
  EXPECT_EQ(results[2], (std::vector<xml::NodeId>{3, 4}));
}

TEST(FilterEngineTest, PredicateTailsMatchSingleQueryEngines) {
  const std::string doc =
      "<r><s id=\"1\"><t>x</t></s><s><t>y</t><u/></s>"
      "<s><s><t>y</t></s></s></r>";
  const std::vector<std::string> queries = {
      "//s[@id]/t",  "//s[u]",        "/r/s/t",      "//s[t=\"y\"]",
      "//*[t]",      "//r//s[t]/t",   "//s[s[t]]",   "/r/s[t=\"x\"]/t",
  };
  const auto multi = RunFilter(queries, doc);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(multi[i], SingleQuery(queries[i], doc)) << queries[i];
  }
}

TEST(FilterEngineTest, SharedTrunkRecursiveDescendant) {
  // Recursive document: '//' trunks with nested matches must stay exact.
  const std::string doc =
      "<a><b><a><b><c/></b></a></b><b><c/></b></a>";
  const std::vector<std::string> queries = {"//a//b[c]", "//a//b[c]/c",
                                            "//a/b/c", "//b//c"};
  const auto multi = RunFilter(queries, doc);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(multi[i], SingleQuery(queries[i], doc)) << queries[i];
  }
}

TEST(FilterEngineTest, DormantTailsReceiveNoEvents) {
  // The tail for //z[b]/c can never engage: no <z> in the document.
  const std::string doc = "<a><b/><b/><c/></a>";
  const FilterEngine* engine = nullptr;
  RunFilter({"//b", "//z/y[b]/c"}, doc, &engine);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->runtime_stats().peak_engaged_tails, 0u);
  EXPECT_GT(engine->runtime_stats().start_events, 0u);
}

TEST(FilterEngineTest, ChunkedFeedingAndReset) {
  const std::string doc = "<a><b/><c><d/></c></a>";
  VectorMultiQuerySink sink;
  auto engine = FilterEngine::Create({"//b", "//c[d]"}, &sink);
  ASSERT_TRUE(engine.ok());
  for (char ch : doc) {
    ASSERT_TRUE(engine.value()->Consume({std::string_view(&ch, 1), false}).ok());
  }
  ASSERT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(engine.value()->total_results(), 2u);
  engine.value()->Reset();
  EXPECT_EQ(engine.value()->total_results(), 0u);
  ASSERT_TRUE(engine.value()->Consume({doc, false}).ok());
  ASSERT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(engine.value()->total_results(), 2u);
  EXPECT_EQ(sink.items().size(), 4u);
}

TEST(FilterEngineTest, BadQueryNamesItsIndex) {
  VectorMultiQuerySink sink;
  auto engine = FilterEngine::Create({"//a", "b[", "//c"}, &sink);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().message().find("query #1"), std::string::npos);
}

TEST(FilterEngineTest, EmptySetAndNullSinkRejected) {
  VectorMultiQuerySink sink;
  EXPECT_FALSE(FilterEngine::Create({}, &sink).ok());
  EXPECT_FALSE(FilterEngine::Create({"//a"}, nullptr).ok());
}

// ---------- randomized differential testing ----------

struct DocParams {
  int max_depth = 6;
  int max_children = 4;
};

void EmitRandomElement(Rng* rng, const DocParams& params, int depth,
                       xml::XmlWriter* w) {
  static const char* kTags[] = {"a", "b", "c", "d", "e"};
  static const char* kAttrs[] = {"x", "y"};
  static const char* kTexts[] = {"u", "v", "w", "10", "3"};
  w->Open(depth == 1 ? "a" : kTags[rng->Below(5)]);
  if (rng->Chance(0.3)) w->Attr(kAttrs[rng->Below(2)], kTexts[rng->Below(5)]);
  if (rng->Chance(0.3)) w->Text(kTexts[rng->Below(5)]);
  if (depth < params.max_depth) {
    const int children = static_cast<int>(
        rng->Below(static_cast<uint64_t>(params.max_children) + 1));
    for (int i = 0; i < children; ++i) {
      EmitRandomElement(rng, params, depth + 1, w);
    }
  }
  w->Close();
}

std::string RandomDocument(Rng* rng) {
  xml::XmlWriter w(/*with_declaration=*/false);
  EmitRandomElement(rng, DocParams(), 1, &w);
  return std::move(w).TakeString();
}

std::string RandomName(Rng* rng) {
  static const char* kTags[] = {"a", "b", "c", "d", "e"};
  return kTags[rng->Below(5)];
}

std::string RandomStep(Rng* rng, bool allow_predicates) {
  std::string out = rng->Chance(0.15) ? "*" : RandomName(rng);
  if (allow_predicates) {
    while (rng->Chance(0.3)) {
      if (rng->Chance(0.25)) {
        out += rng->Chance(0.5) ? "[@x]" : "[@y=\"u\"]";
      } else if (rng->Chance(0.25)) {
        out += "[" + RandomName(rng) + "=\"" +
               std::string(rng->Chance(0.5) ? "u" : "10") + "\"]";
      } else {
        out += "[";
        out += rng->Chance(0.3) ? "//" : "";
        out += RandomName(rng);
        if (rng->Chance(0.4)) out += "/" + RandomName(rng);
        out += "]";
      }
    }
  }
  return out;
}

std::string RandomQuery(Rng* rng) {
  // ~60% linear queries: the filtering workload is linear-dominant, and
  // this exercises both the fully-shared path and the tail demux.
  const bool allow_predicates = rng->Chance(0.4);
  const int steps = 1 + static_cast<int>(rng->Below(3));
  std::string out;
  for (int i = 0; i < steps; ++i) {
    out += rng->Chance(0.4) ? "//" : "/";
    out += RandomStep(rng, allow_predicates);
  }
  return out;
}

// Acceptance criterion: for ≥50 seeded (query set, document) pairs, the
// filter engine emits exactly the same (query_index, id) set as both
// MultiQueryProcessor and N independent XPathStreamProcessor runs.
TEST(FilterEngineDifferentialTest, MatchesIndependentProcessorsAndProduct) {
  Rng rng(0xF117E6);
  int nonempty = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::string doc = RandomDocument(&rng);
    std::vector<std::string> queries;
    const int count = 8 + static_cast<int>(rng.Below(8));
    for (int q = 0; q < count; ++q) {
      // Re-use earlier queries sometimes: duplicates must keep working.
      if (!queries.empty() && rng.Chance(0.2)) {
        queries.push_back(queries[rng.Below(queries.size())]);
      } else {
        queries.push_back(RandomQuery(&rng));
      }
    }

    const auto filtered = RunFilter(queries, doc);

    // N independent single-query streaming runs.
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(filtered[i], SingleQuery(queries[i], doc))
          << "trial " << trial << " query " << queries[i] << "\ndoc " << doc;
      if (!filtered[i].empty()) ++nonempty;
    }

    // The product construction.
    VectorMultiQuerySink product_sink;
    auto product = core::MultiQueryProcessor::Create(queries, &product_sink);
    ASSERT_TRUE(product.ok()) << product.status().ToString();
    ASSERT_TRUE(product.value()->Consume({doc, false}).ok());
    ASSERT_TRUE(product.value()->Consume({std::string_view(), true}).ok());
    std::vector<std::vector<xml::NodeId>> expected(queries.size());
    for (const auto& item : product_sink.items()) {
      expected[item.query_index].push_back(item.id);
    }
    for (auto& ids : expected) std::sort(ids.begin(), ids.end());
    ASSERT_EQ(filtered, expected) << "trial " << trial << "\ndoc " << doc;
  }
  // The generators must actually exercise matching queries.
  EXPECT_GT(nonempty, 100);
}

// An engine is not thread-*safe*, but it is thread-*agnostic*: Reset() and
// re-Feed must work from a different thread than the one that constructed
// it (the serve/ shard workers rely on this — engines are built on the
// control thread and run on workers).
TEST(FilterEngineTest, ResetAndFeedFromDifferentThreads) {
  const std::vector<std::string> queries = {"//a/b", "//b[d]", "//a//d"};
  const std::string doc = "<a><b><d/></b><b/><d/></a>";
  VectorMultiQuerySink sink;
  auto engine = FilterEngine::Create(queries, &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto run_on_thread = [&engine, &doc] {
    std::thread t([&engine, &doc] {
      ASSERT_TRUE(engine.value()->Consume({doc, false}).ok());
      ASSERT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
      engine.value()->Reset();
    });
    t.join();
  };
  run_on_thread();  // thread A
  const std::vector<VectorMultiQuerySink::Item> first = sink.items();
  EXPECT_FALSE(first.empty());
  run_on_thread();  // thread B, after A's Reset
  ASSERT_EQ(sink.items().size(), first.size() * 2);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(sink.items()[first.size() + i].query_index,
              first[i].query_index);
    EXPECT_EQ(sink.items()[first.size() + i].id, first[i].id);
  }
}

// Results are emitted exactly once per (query, id) pair.
TEST(FilterEngineDifferentialTest, NoDuplicateEmissions) {
  Rng rng(0xD0D0);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string doc = RandomDocument(&rng);
    std::vector<std::string> queries;
    for (int q = 0; q < 6; ++q) queries.push_back(RandomQuery(&rng));
    VectorMultiQuerySink sink;
    auto engine = FilterEngine::Create(queries, &sink);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine.value()->Consume({doc, false}).ok());
    ASSERT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
    std::vector<std::pair<size_t, xml::NodeId>> pairs;
    for (const auto& item : sink.items()) {
      pairs.emplace_back(item.query_index, item.id);
    }
    std::sort(pairs.begin(), pairs.end());
    EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end())
        << "duplicate emission, trial " << trial << "\ndoc " << doc;
  }
}

}  // namespace
}  // namespace twigm
