// Property-based differential tests: every engine must agree with the DOM
// oracle on randomly generated (recursive) documents and randomly generated
// queries from the fragments it supports. This is the strongest correctness
// evidence for TwigM's compact-encoding algorithm: the oracle is an
// independent implementation with random access, per the non-streaming
// engines of section 5.

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/dom_eval.h"
#include "baselines/lazy_dfa.h"
#include "baselines/naive_enum.h"
#include "common/random.h"
#include "core/evaluator.h"
#include "gtest/gtest.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"
#include "xml/xml_writer.h"

namespace twigm {
namespace {

using core::EngineKind;
using core::VectorResultSink;

// ---------- random document generation ----------

struct DocParams {
  int max_depth = 6;
  int max_children = 4;
  double attr_probability = 0.3;
  double text_probability = 0.3;
};

void EmitRandomElement(Rng* rng, const DocParams& params, int depth,
                       xml::XmlWriter* w) {
  static const char* kTags[] = {"a", "b", "c", "d", "e"};
  static const char* kAttrs[] = {"x", "y"};
  static const char* kTexts[] = {"u", "v", "w", "10", "3"};
  // The root is always <a> so anchored queries have a realistic hit rate.
  w->Open(depth == 1 ? "a" : kTags[rng->Below(5)]);
  if (rng->Chance(params.attr_probability)) {
    w->Attr(kAttrs[rng->Below(2)], kTexts[rng->Below(5)]);
  }
  if (rng->Chance(params.text_probability)) {
    w->Text(kTexts[rng->Below(5)]);
  }
  if (depth < params.max_depth) {
    const int children = static_cast<int>(
        rng->Below(static_cast<uint64_t>(params.max_children) + 1));
    for (int i = 0; i < children; ++i) {
      EmitRandomElement(rng, params, depth + 1, w);
    }
  }
  w->Close();
}

std::string RandomDocument(Rng* rng, const DocParams& params = DocParams()) {
  xml::XmlWriter w(/*with_declaration=*/false);
  EmitRandomElement(rng, params, 1, &w);
  return std::move(w).TakeString();
}

// ---------- random query generation ----------

std::string RandomName(Rng* rng) {
  static const char* kTags[] = {"a", "b", "c", "d", "e"};
  return kTags[rng->Below(5)];
}

// Fragment knobs.
struct QueryParams {
  bool allow_descendant = true;
  bool allow_wildcard = true;
  bool allow_predicates = true;
  bool allow_value_tests = true;
  int max_steps = 3;
  int max_pred_depth = 2;
};

std::string RandomSteps(Rng* rng, const QueryParams& params, int pred_depth,
                        bool first_is_anchored);

std::string RandomPredicate(Rng* rng, const QueryParams& params,
                            int pred_depth) {
  // Attribute test?
  if (rng->Chance(0.25)) {
    std::string out = "[@";
    out += rng->Chance(0.5) ? "x" : "y";
    if (params.allow_value_tests && rng->Chance(0.4)) {
      out += "=\"" + std::string(rng->Chance(0.5) ? "u" : "10") + "\"";
    }
    out += "]";
    return out;
  }
  std::string out = "[";
  out += RandomSteps(rng, params, pred_depth, /*first_is_anchored=*/false);
  if (params.allow_value_tests && rng->Chance(0.3)) {
    static const char* kOps[] = {"=", "!=", "<", ">="};
    out += kOps[rng->Below(4)];
    out += rng->Chance(0.5) ? "\"u\"" : "5";
  }
  out += "]";
  return out;
}

std::string RandomStep(Rng* rng, const QueryParams& params, int pred_depth) {
  std::string out;
  if (params.allow_wildcard && rng->Chance(0.15)) {
    out = "*";
  } else {
    out = RandomName(rng);
  }
  if (params.allow_predicates && pred_depth < params.max_pred_depth) {
    while (rng->Chance(0.3)) {
      out += RandomPredicate(rng, params, pred_depth + 1);
    }
  }
  return out;
}

std::string RandomSteps(Rng* rng, const QueryParams& params, int pred_depth,
                        bool first_is_anchored) {
  const int steps =
      1 + static_cast<int>(rng->Below(
              static_cast<uint64_t>(params.max_steps)));
  std::string out;
  for (int i = 0; i < steps; ++i) {
    const bool descendant =
        params.allow_descendant && rng->Chance(0.4);
    if (i == 0) {
      if (first_is_anchored) {
        out += descendant ? "//" : "/";
      } else if (descendant) {
        out += "//";
      }
    } else {
      out += descendant ? "//" : "/";
    }
    out += RandomStep(rng, params, pred_depth);
  }
  return out;
}

std::string RandomQuery(Rng* rng, const QueryParams& params) {
  return RandomSteps(rng, params, 0, /*first_is_anchored=*/true);
}

// ---------- engines under test ----------

std::vector<xml::NodeId> OracleEval(const xpath::QueryTree& query,
                                    std::string_view doc) {
  Result<std::vector<xml::NodeId>> result =
      baselines::EvaluateOnDom(query, doc);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value()
                     : std::vector<xml::NodeId>{};
}

std::vector<xml::NodeId> StreamEval(std::string_view query,
                                    std::string_view doc, EngineKind kind,
                                    bool prune) {
  core::EvaluatorOptions options;
  options.engine = kind;
  options.twig.prune_static_failures = prune;
  Result<std::vector<xml::NodeId>> result =
      core::EvaluateToIds(query, doc, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::vector<xml::NodeId> ids =
      result.ok() ? std::move(result).value() : std::vector<xml::NodeId>{};
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<xml::NodeId> LazyDfaEval(const xpath::QueryTree& query,
                                     std::string_view doc) {
  VectorResultSink sink;
  Result<std::unique_ptr<baselines::LazyDfaEngine>> engine =
      baselines::LazyDfaEngine::Create(query, &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (!engine.ok()) return {};
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  EXPECT_TRUE(parser.ParseAll(doc).ok());
  std::vector<xml::NodeId> ids = sink.TakeIds();
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<xml::NodeId> NaiveEval(const xpath::QueryTree& query,
                                   std::string_view doc) {
  VectorResultSink sink;
  Result<std::unique_ptr<baselines::NaiveEnumEngine>> engine =
      baselines::NaiveEnumEngine::Create(query, &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (!engine.ok()) return {};
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  EXPECT_TRUE(parser.ParseAll(doc).ok());
  EXPECT_TRUE(engine.value()->status().ok())
      << engine.value()->status().ToString();
  std::vector<xml::NodeId> ids = sink.TakeIds();
  std::sort(ids.begin(), ids.end());
  return ids;
}

// ---------- the properties ----------

TEST(DifferentialTest, TwigMMatchesOracleOnFullFragment) {
  Rng rng(0xD1FF);
  QueryParams params;  // full XP{/,//,*,[]} + value tests
  int nonempty = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::string doc = RandomDocument(&rng);
    const std::string query = RandomQuery(&rng, params);
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
    ASSERT_TRUE(tree.ok()) << query << ": " << tree.status().ToString();
    const std::vector<xml::NodeId> expected = OracleEval(tree.value(), doc);
    const std::vector<xml::NodeId> twig =
        StreamEval(query, doc, EngineKind::kTwigM, /*prune=*/true);
    ASSERT_EQ(twig, expected) << "query " << query << "\ndoc " << doc;
    const std::vector<xml::NodeId> twig_noprune =
        StreamEval(query, doc, EngineKind::kTwigM, /*prune=*/false);
    ASSERT_EQ(twig_noprune, expected) << "query " << query << "\ndoc " << doc;
    if (!expected.empty()) ++nonempty;
  }
  // The generators must actually exercise matching queries.
  EXPECT_GT(nonempty, 50);
}

TEST(DifferentialTest, PathMAndLazyDfaMatchOracleOnLinearFragment) {
  Rng rng(0xA11CE);
  QueryParams params;
  params.allow_predicates = false;
  params.allow_value_tests = false;
  int nonempty = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::string doc = RandomDocument(&rng);
    const std::string query = RandomQuery(&rng, params);
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
    ASSERT_TRUE(tree.ok()) << query;
    const std::vector<xml::NodeId> expected = OracleEval(tree.value(), doc);
    ASSERT_EQ(StreamEval(query, doc, EngineKind::kPathM, true), expected)
        << "PathM, query " << query << "\ndoc " << doc;
    ASSERT_EQ(StreamEval(query, doc, EngineKind::kTwigM, true), expected)
        << "TwigM, query " << query << "\ndoc " << doc;
    ASSERT_EQ(LazyDfaEval(tree.value(), doc), expected)
        << "LazyDfa, query " << query << "\ndoc " << doc;
    if (!expected.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 50);
}

TEST(DifferentialTest, BranchMMatchesOracleOnChildOnlyFragment) {
  Rng rng(0xB0B);
  QueryParams params;
  params.allow_descendant = false;
  params.allow_wildcard = false;
  params.max_steps = 2;
  int nonempty = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::string doc = RandomDocument(&rng);
    // Anchor at the (fixed) root tag so a useful fraction of the child-only
    // queries actually matches something.
    const std::string query =
        "/a/" + RandomSteps(&rng, params, 0, /*first_is_anchored=*/false);
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
    ASSERT_TRUE(tree.ok()) << query;
    const std::vector<xml::NodeId> expected = OracleEval(tree.value(), doc);
    ASSERT_EQ(StreamEval(query, doc, EngineKind::kBranchM, true), expected)
        << "BranchM, query " << query << "\ndoc " << doc;
    ASSERT_EQ(StreamEval(query, doc, EngineKind::kTwigM, true), expected)
        << "TwigM, query " << query << "\ndoc " << doc;
    if (!expected.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 40);
}

TEST(DifferentialTest, NaiveEnumMatchesOracleOnStructuralFragment) {
  Rng rng(0xE2E);
  QueryParams params;
  params.allow_value_tests = false;  // XSQ-style restriction
  params.max_steps = 2;              // keep enumeration tractable
  params.max_pred_depth = 1;
  DocParams doc_params;
  doc_params.max_depth = 5;
  doc_params.max_children = 3;
  int nonempty = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const std::string doc = RandomDocument(&rng, doc_params);
    const std::string query = RandomQuery(&rng, params);
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
    ASSERT_TRUE(tree.ok()) << query;
    const std::vector<xml::NodeId> expected = OracleEval(tree.value(), doc);
    ASSERT_EQ(NaiveEval(tree.value(), doc), expected)
        << "NaiveEnum, query " << query << "\ndoc " << doc;
    if (!expected.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 40);
}

TEST(DifferentialTest, ResultsNeverContainDuplicates) {
  Rng rng(0xD0B);
  QueryParams params;
  for (int trial = 0; trial < 200; ++trial) {
    const std::string doc = RandomDocument(&rng);
    const std::string query = RandomQuery(&rng, params);
    core::EvaluatorOptions options;
    options.engine = EngineKind::kTwigM;
    Result<std::vector<xml::NodeId>> result =
        core::EvaluateToIds(query, doc, options);
    ASSERT_TRUE(result.ok());
    std::vector<xml::NodeId> ids = result.value();
    std::sort(ids.begin(), ids.end());
    const auto unique_end = std::unique(ids.begin(), ids.end());
    EXPECT_EQ(unique_end, ids.end())
        << "duplicate results for " << query << " on " << doc;
  }
}

}  // namespace
}  // namespace twigm
