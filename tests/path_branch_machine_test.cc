// Tests for the specialized machines: PathM (section 3.1, XP{/,//,*}) and
// BranchM (section 3.2, XP{/,[]}), including their applicability limits and
// PathM's fully incremental emission.

#include <memory>
#include <string>

#include "core/branch_machine.h"
#include "core/path_machine.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/sax_parser.h"

namespace twigm {
namespace {

using core::BranchMachine;
using core::EngineKind;
using core::PathMachine;
using core::VectorResultSink;
using testing::Ids;
using testing::MustEvaluate;

TEST(PathMachineTest, LinearQueries) {
  const std::string doc = "<a><b><c/></b><c/></a>";
  EXPECT_EQ(MustEvaluate("/a/c", doc, EngineKind::kPathM), Ids({4}));
  EXPECT_EQ(MustEvaluate("/a//c", doc, EngineKind::kPathM), Ids({3, 4}));
  EXPECT_EQ(MustEvaluate("//c", doc, EngineKind::kPathM), Ids({3, 4}));
}

TEST(PathMachineTest, WildcardsAndCollapse) {
  const std::string doc = "<a><x><b/></x><b/></a>";  // a=1 x=2 b=3 b=4
  EXPECT_EQ(MustEvaluate("//a/*/b", doc, EngineKind::kPathM), Ids({3}));
  EXPECT_EQ(MustEvaluate("//*", doc, EngineKind::kPathM), Ids({1, 2, 3, 4}));
}

TEST(PathMachineTest, RecursiveData) {
  const std::string doc = "<a><a><b/></a></a>";  // a=1 a=2 b=3
  EXPECT_EQ(MustEvaluate("//a//b", doc, EngineKind::kPathM), Ids({3}));
  EXPECT_EQ(MustEvaluate("//a//a", doc, EngineKind::kPathM), Ids({2}));
}

TEST(PathMachineTest, RejectsPredicates) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a[b]/c");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  Result<std::unique_ptr<PathMachine>> machine =
      PathMachine::Create(tree.value(), &sink);
  ASSERT_FALSE(machine.ok());
  EXPECT_EQ(machine.status().code(), StatusCode::kNotSupported);
}

TEST(PathMachineTest, EmitsAtStartElement) {
  // PathM emits the instant the candidate's start tag is seen: the result
  // must be delivered before the document is finished.
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a/b");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  Result<std::unique_ptr<PathMachine>> machine =
      PathMachine::Create(tree.value(), &sink);
  ASSERT_TRUE(machine.ok());
  xml::EventDriver driver(machine.value().get());
  xml::SaxParser parser(&driver);
  ASSERT_TRUE(parser.Consume({"<a><b>", false}).ok());
  EXPECT_EQ(sink.ids().size(), 1u);  // already emitted, stream still open
  ASSERT_TRUE(parser.Consume({"</b></a>", false}).ok());
  ASSERT_TRUE(parser.Consume({std::string_view(), true}).ok());
  EXPECT_EQ(sink.ids().size(), 1u);
}

TEST(PathMachineTest, StatsTrackStackDepth) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a//a");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  Result<std::unique_ptr<PathMachine>> machine =
      PathMachine::Create(tree.value(), &sink);
  ASSERT_TRUE(machine.ok());
  xml::EventDriver driver(machine.value().get());
  xml::SaxParser parser(&driver);
  ASSERT_TRUE(parser.ParseAll("<a><a><a/></a></a>").ok());
  EXPECT_EQ(machine.value()->stats().results, 2u);
  // Stacks: node0 holds 3 a's, node1 holds 2 => peak 5.
  EXPECT_EQ(machine.value()->stats().peak_stack_entries, 5u);
}

TEST(BranchMachineTest, ChildOnlyPredicates) {
  const std::string doc =
      "<a><b><d/></b><b/><c/></a>";  // a=1 b=2 d=3 b=4 c=5
  EXPECT_EQ(MustEvaluate("/a/b[d]", doc, EngineKind::kBranchM), Ids({2}));
  EXPECT_EQ(MustEvaluate("/a[c]/b", doc, EngineKind::kBranchM), Ids({2, 4}));
  EXPECT_EQ(MustEvaluate("/a[b][c]", doc, EngineKind::kBranchM), Ids({1}));
  EXPECT_EQ(MustEvaluate("/a[x]/b", doc, EngineKind::kBranchM), Ids({}));
}

TEST(BranchMachineTest, PaperFigure3Example) {
  // Q3 ≈ /a[d]/b[e]/c: candidate c buffered until both predicates resolve.
  const std::string doc =
      "<a><b><c/><e/></b><d/></a>";  // a=1 b=2 c=3 e=4 d=5
  EXPECT_EQ(MustEvaluate("/a[d]/b[e]/c", doc, EngineKind::kBranchM),
            Ids({3}));
  EXPECT_EQ(MustEvaluate("/a[d]/b[x]/c", doc, EngineKind::kBranchM), Ids({}));
}

TEST(BranchMachineTest, SiblingCandidatesAccumulate) {
  const std::string doc =
      "<a><b><c/><c/></b><b><c/></b><d/></a>";  // c ids 3,4,6
  EXPECT_EQ(MustEvaluate("/a[d]/b/c", doc, EngineKind::kBranchM),
            Ids({3, 4, 6}));
}

TEST(BranchMachineTest, AttributeAndValueTests) {
  const std::string doc =
      "<a><b id=\"1\"><t>x</t></b><b><t>y</t></b></a>";  // a=1 b=2 t=3 b=4 t=5
  EXPECT_EQ(MustEvaluate("/a/b[@id]", doc, EngineKind::kBranchM), Ids({2}));
  EXPECT_EQ(MustEvaluate("/a/b[t=\"y\"]", doc, EngineKind::kBranchM),
            Ids({4}));
  EXPECT_EQ(MustEvaluate("/a/b[.!=\"\"]", doc, EngineKind::kBranchM),
            Ids({}));  // b has no direct text
}

TEST(BranchMachineTest, NestedPredicates) {
  const std::string doc = "<a><b><c><d/></c></b><b><c/></b></a>";
  EXPECT_EQ(MustEvaluate("/a/b[c[d]]", doc, EngineKind::kBranchM), Ids({2}));
}

TEST(BranchMachineTest, RepeatedTagAtDifferentLevels) {
  // The same tag appears at several query depths.
  const std::string doc = "<a><a><a/></a></a>";
  EXPECT_EQ(MustEvaluate("/a/a/a", doc, EngineKind::kBranchM), Ids({3}));
  EXPECT_EQ(MustEvaluate("/a/a[a]", doc, EngineKind::kBranchM), Ids({2}));
}

TEST(BranchMachineTest, RejectsDescendantAxis) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a[b]/c");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  Result<std::unique_ptr<BranchMachine>> machine =
      BranchMachine::Create(tree.value(), &sink);
  ASSERT_FALSE(machine.ok());
  EXPECT_EQ(machine.status().code(), StatusCode::kNotSupported);
}

TEST(BranchMachineTest, RejectsWildcard) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("/a/*[b]");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  Result<std::unique_ptr<BranchMachine>> machine =
      BranchMachine::Create(tree.value(), &sink);
  ASSERT_FALSE(machine.ok());
  EXPECT_EQ(machine.status().code(), StatusCode::kNotSupported);
}

TEST(BranchMachineTest, StateResetBetweenSiblings) {
  // The first b satisfies [d]; the second must not inherit its match.
  const std::string doc = "<a><b><d/><c/></b><b><c/></b></a>";
  // ids: a=1 b=2 d=3 c=4 b=5 c=6
  EXPECT_EQ(MustEvaluate("/a/b[d]/c", doc, EngineKind::kBranchM), Ids({4}));
}

}  // namespace
}  // namespace twigm
