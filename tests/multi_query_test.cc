#include "core/multi_query.h"

#include <algorithm>
#include <string>

#include "gtest/gtest.h"

namespace twigm {
namespace {

using core::EngineKind;
using core::EvaluatorOptions;
using core::MultiQueryProcessor;
using core::VectorMultiQuerySink;

struct PerQuery {
  std::vector<xml::NodeId> ids;
};

std::vector<PerQuery> RunMulti(const std::vector<std::string>& queries,
                               std::string_view doc) {
  VectorMultiQuerySink sink;
  auto proc = MultiQueryProcessor::Create(queries, &sink);
  EXPECT_TRUE(proc.ok()) << proc.status().ToString();
  std::vector<PerQuery> out(queries.size());
  if (!proc.ok()) return out;
  EXPECT_TRUE(proc.value()->Consume({doc, false}).ok());
  EXPECT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  for (const auto& item : sink.items()) {
    out[item.query_index].ids.push_back(item.id);
  }
  for (auto& q : out) std::sort(q.ids.begin(), q.ids.end());
  return out;
}

TEST(MultiQueryTest, IndependentQueriesIndependentResults) {
  const std::string doc =
      "<a><b><c/></b><d/><b/></a>";  // a=1 b=2 c=3 d=4 b=5
  const std::vector<PerQuery> results =
      RunMulti({"//b", "//b[c]", "//a[d]//c", "//x"}, doc);
  EXPECT_EQ(results[0].ids, (std::vector<xml::NodeId>{2, 5}));
  EXPECT_EQ(results[1].ids, (std::vector<xml::NodeId>{2}));
  EXPECT_EQ(results[2].ids, (std::vector<xml::NodeId>{3}));
  EXPECT_TRUE(results[3].ids.empty());
}

TEST(MultiQueryTest, MatchesSingleQueryProcessors) {
  const std::string doc =
      "<r><s id=\"1\"><t>x</t></s><s><t>y</t><u/></s></r>";
  const std::vector<std::string> queries = {
      "//s[@id]/t", "//s[u]", "/r/s/t", "//s[t=\"y\"]", "//*[t]"};
  const std::vector<PerQuery> multi = RunMulti(queries, doc);
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<std::vector<xml::NodeId>> single =
        core::EvaluateToIds(queries[i], doc);
    ASSERT_TRUE(single.ok());
    std::vector<xml::NodeId> expected = std::move(single).value();
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(multi[i].ids, expected) << queries[i];
  }
}

TEST(MultiQueryTest, EnginesPickedPerQuery) {
  VectorMultiQuerySink sink;
  auto proc = MultiQueryProcessor::Create(
      {"//a//b", "/a/b[c]", "//a[b]//c"}, &sink);
  ASSERT_TRUE(proc.ok());
  EXPECT_EQ(proc.value()->engine_kind(0), EngineKind::kPathM);
  EXPECT_EQ(proc.value()->engine_kind(1), EngineKind::kBranchM);
  EXPECT_EQ(proc.value()->engine_kind(2), EngineKind::kTwigM);
}

TEST(MultiQueryTest, BadQueryNamesItsIndex) {
  VectorMultiQuerySink sink;
  auto proc = MultiQueryProcessor::Create({"//a", "b[", "//c"}, &sink);
  ASSERT_FALSE(proc.ok());
  EXPECT_NE(proc.status().message().find("query #1"), std::string::npos);
}

TEST(MultiQueryTest, EmptyQuerySetRejected) {
  VectorMultiQuerySink sink;
  auto proc = MultiQueryProcessor::Create({}, &sink);
  ASSERT_FALSE(proc.ok());
}

TEST(MultiQueryTest, NullSinkRejected) {
  auto proc = MultiQueryProcessor::Create({"//a"}, nullptr);
  ASSERT_FALSE(proc.ok());
}

TEST(MultiQueryTest, ChunkedFeeding) {
  const std::string doc = "<a><b/><c/><b/></a>";
  VectorMultiQuerySink sink;
  auto proc = MultiQueryProcessor::Create({"//b", "//c"}, &sink);
  ASSERT_TRUE(proc.ok());
  for (char ch : doc) {
    ASSERT_TRUE(proc.value()->Consume({std::string_view(&ch, 1), false}).ok());
  }
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(proc.value()->total_results(), 3u);
}

TEST(MultiQueryTest, StatsPerQuery) {
  const std::string doc = "<a><b/><b/></a>";
  VectorMultiQuerySink sink;
  auto proc = MultiQueryProcessor::Create({"//b", "//nope"}, &sink);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({doc, false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(proc.value()->stats(0).results, 2u);
  EXPECT_EQ(proc.value()->stats(1).results, 0u);
  EXPECT_EQ(proc.value()->stats(1).start_events, 3u);
}

TEST(MultiQueryTest, ResetAllowsNewDocument) {
  VectorMultiQuerySink sink;
  auto proc = MultiQueryProcessor::Create({"//b"}, &sink);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({"<a><b/></a>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  proc.value()->Reset();
  EXPECT_EQ(proc.value()->total_results(), 0u);
  ASSERT_TRUE(proc.value()->Consume({"<a><b/><b/></a>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(proc.value()->total_results(), 2u);
  EXPECT_EQ(sink.items().size(), 3u);
}

TEST(MultiQueryTest, ManyQueriesOneParse) {
  // 100 queries over one document: results must be exactly per query.
  std::vector<std::string> queries;
  for (int i = 0; i < 100; ++i) {
    queries.push_back(i % 2 == 0 ? "//b" : "//c[d]");
  }
  const std::string doc = "<a><b/><c><d/></c></a>";  // b=2, c=3
  const std::vector<PerQuery> results = RunMulti(queries, doc);
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(results[static_cast<size_t>(i)].ids,
                (std::vector<xml::NodeId>{2}));
    } else {
      EXPECT_EQ(results[static_cast<size_t>(i)].ids,
                (std::vector<xml::NodeId>{3}));
    }
  }
}

}  // namespace
}  // namespace twigm
