// Robustness / failure-injection tests: mutated and truncated inputs must
// produce clean errors (never crashes, hangs, or silent wrong results), and
// engines must stay inert after a parse error.

#include <string>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/value_test.h"
#include "gtest/gtest.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"
#include "xml/xml_writer.h"

namespace twigm {
namespace {

TEST(RobustnessTest, RandomByteMutationsNeverCrash) {
  const std::string base =
      "<?xml version=\"1.0\"?><a><b x=\"1\">t&amp;t</b><!--c--><c><![CDATA["
      "raw]]></c><d/></a>";
  Rng rng(0xF002);
  int errors = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string doc = base;
    const int mutations = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Below(doc.size());
      switch (rng.Below(3)) {
        case 0:
          doc[pos] = static_cast<char>(rng.Below(256));
          break;
        case 1:
          doc.erase(pos, 1);
          break;
        default:
          doc.insert(pos, 1, static_cast<char>("<>&\"'/="[rng.Below(7)]));
      }
    }
    core::VectorResultSink sink;
    auto proc = core::XPathStreamProcessor::Create("//b[x]//c", &sink);
    ASSERT_TRUE(proc.ok());
    Status s = proc.value()->Consume({doc, false});
    if (s.ok()) s = proc.value()->Consume({std::string_view(), true});
    if (!s.ok()) ++errors;
    // Either way: no crash, and the status is well-formed.
    EXPECT_TRUE(s.ok() || !s.message().empty());
  }
  // Most mutations must be detected as malformed.
  EXPECT_GT(errors, 1000);
}

TEST(RobustnessTest, TruncationAtEveryPrefixFailsCleanly) {
  const std::string doc = "<a><b x=\"1\">text</b><c/></a>";
  for (size_t len = 0; len < doc.size(); ++len) {
    xml::SaxHandler handler;
    xml::SaxParser parser(&handler);
    Status s = parser.Consume({std::string_view(doc).substr(0, len), false});
    if (s.ok()) s = parser.Consume({std::string_view(), true});
    EXPECT_FALSE(s.ok()) << "prefix length " << len;
  }
}

TEST(RobustnessTest, ErrorsAfterPartialResultsLeaveEmittedResultsValid) {
  // The engine emits what it can prove, then the document breaks. Results
  // emitted before the error must be correct; no extras after.
  core::VectorResultSink sink;
  auto proc = core::XPathStreamProcessor::Create("//b", &sink);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({"<a><b/><b/>", false}).ok());
  EXPECT_EQ(sink.ids().size(), 2u);  // PathM emits eagerly
  EXPECT_FALSE(proc.value()->Consume({"</c>", false}).ok());
  EXPECT_FALSE(proc.value()->Consume({"<b/>", false}).ok());  // poisoned
  EXPECT_EQ(sink.ids().size(), 2u);
}

TEST(RobustnessTest, HugeFlatDocumentStaysBoundedMemory) {
  // 200k siblings; engine state must remain tiny (no growth with |D|).
  core::VectorResultSink sink;
  core::EvaluatorOptions options;
  options.engine = core::EngineKind::kTwigM;
  auto proc = core::XPathStreamProcessor::Create("//row[v]", &sink, options);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({"<table>", false}).ok());
  for (int i = 0; i < 200000; ++i) {
    ASSERT_TRUE(proc.value()->Consume({"<row><v/></row>", false}).ok());
  }
  ASSERT_TRUE(proc.value()->Consume({"</table>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(sink.ids().size(), 200000u);
  EXPECT_LE(proc.value()->stats().peak_stack_entries, 4u);
}

TEST(RobustnessTest, PathologicalDeepNestingHitsDepthLimit) {
  core::VectorResultSink sink;
  core::EvaluatorOptions options;
  options.sax.max_depth = 1000;
  auto proc = core::XPathStreamProcessor::Create("//a", &sink, options);
  ASSERT_TRUE(proc.ok());
  Status s;
  for (int i = 0; i < 2000; ++i) {
    s = proc.value()->Consume({"<a>", false});
    if (!s.ok()) break;
  }
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(ValueTestSemantics, NumericVsStringComparison) {
  using core::EvalValueTest;
  using xpath::CmpOp;
  // Numeric literal + numeric text: numeric comparison.
  EXPECT_TRUE(EvalValueTest("10", CmpOp::kGt, "9", true));
  EXPECT_TRUE(EvalValueTest(" 10 ", CmpOp::kEq, "10", true));
  EXPECT_TRUE(EvalValueTest("2.5", CmpOp::kLt, "2.75", true));
  // Numeric literal + non-numeric text: only != holds.
  EXPECT_FALSE(EvalValueTest("abc", CmpOp::kEq, "10", true));
  EXPECT_TRUE(EvalValueTest("abc", CmpOp::kNe, "10", true));
  EXPECT_FALSE(EvalValueTest("abc", CmpOp::kLt, "10", true));
  // String literal: bytewise.
  EXPECT_TRUE(EvalValueTest("10", CmpOp::kLt, "9", false));  // "1" < "9"
  EXPECT_TRUE(EvalValueTest("abc", CmpOp::kEq, "abc", false));
  EXPECT_FALSE(EvalValueTest("abc", CmpOp::kEq, "ABC", false));
  EXPECT_TRUE(EvalValueTest("", CmpOp::kEq, "", false));
}

TEST(ValueTestSemantics, EdgeNumbers) {
  using core::EvalValueTest;
  using xpath::CmpOp;
  EXPECT_TRUE(EvalValueTest("0", CmpOp::kEq, "0.0", true));
  EXPECT_TRUE(EvalValueTest("-3", CmpOp::kLt, "0", true));
  EXPECT_FALSE(EvalValueTest("", CmpOp::kEq, "0", true));
  EXPECT_FALSE(EvalValueTest("1e", CmpOp::kEq, "1", true));
  EXPECT_TRUE(EvalValueTest("1e2", CmpOp::kEq, "100", true));
}

TEST(EdgeConditionTest, SatisfiesSemantics) {
  core::EdgeCondition exact{true, 2};
  EXPECT_TRUE(exact.Satisfies(2));
  EXPECT_FALSE(exact.Satisfies(1));
  EXPECT_FALSE(exact.Satisfies(3));
  EXPECT_EQ(exact.ToString(), "(=,2)");

  core::EdgeCondition ge{false, 3};
  EXPECT_FALSE(ge.Satisfies(2));
  EXPECT_TRUE(ge.Satisfies(3));
  EXPECT_TRUE(ge.Satisfies(30));
  EXPECT_EQ(ge.ToString(), "(>=,3)");
}

TEST(RobustnessTest, WriterParserRoundTripProperty) {
  // Random content through XmlWriter must reparse to the same text/attrs.
  Rng rng(0x5150);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng.Below(30));
    for (int i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(32 + rng.Below(95)));
    }
    xml::XmlWriter w(false);
    w.Open("r").Attr("k", text).Text(text).Close();
    const std::string doc = std::move(w).TakeString();
    Result<xml::DomDocument> parsed = xml::DomDocument::Parse(doc);
    ASSERT_TRUE(parsed.ok()) << doc;
    EXPECT_EQ(parsed.value().root()->text, text);
    EXPECT_EQ(*parsed.value().root()->FindAttribute("k"), text);
  }
}

}  // namespace
}  // namespace twigm
