// Fixture: the capability-annotated wrappers are the accepted way to lock
// in serve-scoped code; -Wthread-safety can see these critical sections.
#include "common/thread_annotations.h"

namespace fixture {

struct ServeStateClean {
  twigm::common::Mutex mu_;
  twigm::common::CondVar cv_;
  int guarded_value_ TWIGM_GUARDED_BY(mu_) = 0;

  void Bump() {
    twigm::common::MutexLock lock(&mu_);
    ++guarded_value_;
    cv_.NotifyOne();
  }
};

}  // namespace fixture
