// Fixture: explicit-order atomic operations and same-named non-atomic
// locals/members must not be flagged.
#include <atomic>
#include <cstdint>

namespace fixture {

struct CleanCounters {
  std::atomic<uint64_t> events{0};
  std::atomic<bool> running{false};
};

struct PlainState {
  uint64_t events = 0;  // non-atomic member sharing the name: no finding
};

inline void Touch(CleanCounters& c, PlainState& p) {
  c.events.fetch_add(1, std::memory_order_relaxed);
  c.running.store(true, std::memory_order_relaxed);
  (void)c.events.load(std::memory_order_relaxed);
  p.events += 1;  // member access through a non-atomic object
  uint64_t events = 7;  // shadowing local declaration: no finding
  (void)events;
}

std::atomic<int> g_clean_mode{0};

inline bool TryClaim(CleanCounters& c) {
  bool expected = false;
  g_clean_mode.store(1, std::memory_order_relaxed);
  return c.running.compare_exchange_strong(expected, true,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed);
}

}  // namespace fixture
