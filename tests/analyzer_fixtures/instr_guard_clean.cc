// Fixture: every guard shape the codebase actually uses must be accepted —
// enclosing if, same-statement ternary, &&-conjunction, early-out return
// (including a disjunctive early-out, whose negation implies non-null).
namespace fixture {

struct Instr {
  void OnEvent(int);
  bool enabled();
};

struct GuardedMachine {
  Instr* instr_ = nullptr;

  void StepIf(int ev) {
    if (instr_ != nullptr) {
      instr_->OnEvent(ev);
    }
  }

  bool StepTernary() {
    return instr_ != nullptr ? instr_->enabled() : false;
  }

  void StepConjunction(int ev, bool on) {
    if (on && instr_ != nullptr) instr_->OnEvent(ev);
  }

  void StepEarlyOut(int ev) {
    if (instr_ == nullptr) return;
    instr_->OnEvent(ev);
  }

  void StepEarlyOutDisjunct(int ev, bool off) {
    if (instr_ == nullptr || off) return;
    instr_->OnEvent(ev);
  }

  void StepNested(int ev) {
    if (instr_ != nullptr) {
      if (ev > 0) {
        instr_->OnEvent(ev);
      }
    }
  }
};

}  // namespace fixture
