// Fixture: the sanctioned hot-path idioms must not be flagged — member
// (pooled) container growth, references to containers, the allow-alloc
// escape, and unannotated functions.
#include <memory>
#include <string>
#include <vector>

namespace fixture {

struct Pool {
  std::vector<int> scratch_;
  std::string text_buf_;
  void Note(size_t);
};

// hotpath
void ProcessEventPooled(Pool& pool, int n) {
  pool.scratch_.push_back(n);  // member growth: amortized, gated by bench
  pool.text_buf_.assign("x");  // capacity-retaining reuse
  std::vector<int>& view = pool.scratch_;  // reference, no ownership
  pool.Note(view.size());
  // lint: allow-alloc(cold slow path, runs at most once per document)
  auto lazily = std::make_unique<std::vector<int>>(1);
  pool.Note(lazily->size());
}

// Not annotated `// hotpath`: allocations are unrestricted here.
void ColdSetup(Pool& pool) {
  std::vector<int> tmp(16, 0);
  pool.Note(tmp.size());
}

}  // namespace fixture
