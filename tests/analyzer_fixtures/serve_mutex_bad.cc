// Fixture: raw standard-library synchronization primitives in a
// serve-scoped file must be rejected in favor of the annotated wrappers.
#include <condition_variable>
#include <mutex>

namespace fixture {

struct ServeState {
  std::mutex mu_;  // expect: mutex-wrapper
  std::condition_variable cv_;  // expect: mutex-wrapper
  int guarded_value_ = 0;

  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);  // expect: mutex-wrapper
    ++guarded_value_;
  }
};

}  // namespace fixture
