// Fixture: instrumentation derefs without a dominating null test, and the
// guard shapes that look safe but are not (disjunctive conditions, the
// wrong branch of an early-out).
namespace fixture {

struct Instr {
  void OnEvent(int);
  bool enabled();
};

struct Machine {
  Instr* instr_ = nullptr;

  void StepBare(int ev) {
    instr_->OnEvent(ev);  // expect: instr-guard
  }

  void StepDisjunct(int ev, bool force) {
    if (instr_ != nullptr || force) {
      instr_->OnEvent(ev);  // expect: instr-guard
    }
  }

  void StepWrongBranch(int ev) {
    if (instr_ == nullptr) {
      instr_->OnEvent(ev);  // expect: instr-guard
    }
  }

  void StepAfterOtherGuard(Instr* other, int ev) {
    if (other != nullptr) {
      instr_->OnEvent(ev);  // expect: instr-guard
    }
  }
};

}  // namespace fixture
