// Fixture: files with `dom` in the name are the sanctioned materialization
// point — event-scope string construction is exempt from sv-string-copy.
#include <string>
#include <string_view>
#include <vector>

namespace fixture {

struct DomBuilder {
  std::vector<std::string> nodes_;

  void StartElement(std::string_view tag) {
    nodes_.push_back(std::string(tag));  // DOM owns its text: exempt
  }
};

}  // namespace fixture
