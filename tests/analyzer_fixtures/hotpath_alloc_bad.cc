// Fixture: allocations inside a `// hotpath` function must be flagged,
// including local owning containers (their growth allocates per event).
#include <string>
#include <vector>

namespace fixture {

struct Sink {
  void Consume(size_t);
};

// hotpath
void ProcessEvent(Sink& sink, int n) {
  int* boxed = new int(n);  // expect: hotpath-alloc
  sink.Consume(static_cast<size_t>(*boxed));
  delete boxed;
  std::vector<int> scratch;  // expect: hotpath-alloc
  scratch.push_back(n);
  sink.Consume(std::to_string(n).size());  // expect: hotpath-alloc
  sink.Consume(std::string("tmp").size());  // expect: hotpath-alloc
}

// hotpath
void ProcessNested(Sink& sink, int n) {
  if (n > 0) {
    auto owned = std::make_unique<int>(n);  // expect: hotpath-alloc
    sink.Consume(static_cast<size_t>(*owned));
  }
}

}  // namespace fixture
