// Fixture: the legal event-scope string idioms — pooled-buffer assign,
// default construction (no copy), the allow-string-copy escape, and
// string construction in non-event functions.
#include <string>
#include <string_view>

namespace fixture {

struct PooledCollector {
  std::string scratch_;
  size_t total_ = 0;

  void StartElement(std::string_view tag) {
    scratch_.assign(tag);  // capacity-retaining reuse, no construction
    total_ += scratch_.size();
  }

  void Text(std::string_view text) {
    std::string empty;  // default construction allocates nothing
    // lint: allow-string-copy(diagnostic path, compiled out in release)
    std::string diag(text);
    total_ += diag.size() + empty.size();
  }

  void Finish(std::string_view tail) {
    std::string copied(tail);  // not an event-scope function
    total_ += copied.size();
  }
};

}  // namespace fixture
