// Fixture: std::string constructed from view data inside an event-scope
// function — the per-event allocation the streaming path must not make.
#include <string>
#include <string_view>
#include <vector>

namespace fixture {

struct Collector {
  std::vector<std::string> names_;
  size_t total_ = 0;

  void StartElement(std::string_view tag) {
    names_.push_back(std::string(tag));  // expect: sv-string-copy
  }

  void Text(std::string_view text) {
    std::string owned{text};  // expect: sv-string-copy
    total_ += owned.size();
  }
};

}  // namespace fixture
