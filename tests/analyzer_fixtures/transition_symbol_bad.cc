// Fixture: string equality on tag text in a transition function with no
// symbol-availability test anywhere on the path.
#include <string>
#include <string_view>

namespace fixture {

struct TagTok {
  std::string_view text;
  unsigned id_field;
};

struct NodeMachine {
  std::string label_;

  bool StartElement(const TagTok& tag) {
    return tag.text == label_;  // expect: symbol-compare
  }

  bool ConsiderChild(const TagTok& tag, bool wildcard) {
    if (wildcard) return true;
    if (tag.text != label_) {  // expect: symbol-compare
      return false;
    }
    return true;
  }
};

}  // namespace fixture
