// Fixture: the legal byte-compare fallbacks — paths that already tested
// symbol availability (kNoSymbol test, have_symbol ternary), and
// comparisons outside transition functions.
#include <string>
#include <string_view>

namespace fixture {

inline constexpr unsigned kNoSym = ~0u;

struct SymTagTok {
  std::string_view text;
  unsigned symbol = kNoSym;
};

struct SymNodeMachine {
  std::string label_;
  unsigned symbol_ = kNoSym;
  bool bound_ = false;

  bool StartElement(const SymTagTok& tag) {
    if (bound_ && tag.symbol != kNoSym) {
      return tag.symbol == symbol_;
    }
    return tag.text == label_;  // fallback: symbol availability was tested
  }

  bool ConsiderChild(const SymTagTok& tag) {
    const bool have_symbol = tag.symbol != kNoSym;
    return have_symbol ? tag.symbol == symbol_ : tag.text == label_;
  }

  bool DescribeMatches(const SymTagTok& tag) const {
    return tag.text == label_;  // not a transition function
  }
};

}  // namespace fixture
