// Fixture: a correctly annotated release/acquire pair, plus relaxed ops
// (which need no annotation — they order nothing).
#include <atomic>
#include <cstdint>

namespace fixture {

struct GoodFlag {
  std::atomic<bool> ready{false};
  std::atomic<uint64_t> hits{0};
  int payload = 0;

  void Publish(int v) {
    payload = v;
    // Release-publish payload to the consumer's acquire load.
    // pairs-with: pairs_with_clean.cc:GoodFlag::Consume
    ready.store(true, std::memory_order_release);
  }

  bool Consume(int* out) {
    hits.fetch_add(1, std::memory_order_relaxed);  // stat: no pairing
    // pairs-with: pairs_with_clean.cc:GoodFlag::Publish
    if (!ready.load(std::memory_order_acquire)) return false;
    *out = payload;
    return true;
  }
};

}  // namespace fixture
