// Fixture: defaulted-seq_cst atomic operations — method calls without an
// explicit memory_order, and implicit operator forms.
#include <atomic>
#include <cstdint>

namespace fixture {

struct Counters {
  std::atomic<uint64_t> events{0};
  std::atomic<bool> running{false};
};

inline void Touch(Counters& c) {
  c.events.fetch_add(1);  // expect: atomic-order
  c.running.store(true);  // expect: atomic-order
  (void)c.events.load();  // expect: atomic-order
}

std::atomic<int> g_mode{0};

inline void SetMode(int m) {
  g_mode = m;  // expect: atomic-order
  ++g_mode;  // expect: atomic-order
  g_mode += 2;  // expect: atomic-order
}

}  // namespace fixture
