// Fixture: acquire/release sites with a missing, dangling, or
// role-mismatched pairs-with annotation.
#include <atomic>

namespace fixture {

struct BadFlag {
  std::atomic<bool> ready{false};
  int payload = 0;

  void Publish(int v) {
    payload = v;
    ready.store(true, std::memory_order_release);  // expect: pairs-with
  }

  bool Consume(int* out) {
    // pairs-with: no_such_file.cc:BadFlag::Publish
    if (!ready.load(std::memory_order_acquire)) return false;  // expect: pairs-with
    *out = payload;
    return true;
  }

  bool Peek() {
    // pairs-with: pairs_with_bad.cc:BadFlag::Consume
    return ready.load(std::memory_order_acquire);  // expect: pairs-with
  }
};

}  // namespace fixture
