// Tests for the static analyzer (src/analysis/): the DtdStructure summary,
// DTD satisfiability with diagnostics, tree-pattern minimization (incl.
// idempotence), homomorphism containment (incl. the '//'+'*' traps), and
// level-bound result preservation on machines.

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/dtd_structure.h"
#include "analysis/query_analysis.h"
#include "core/evaluator.h"
#include "core/machine_builder.h"
#include "core/result_sink.h"
#include "core/twig_machine.h"
#include "dtd/dtd_generator.h"
#include "dtd/dtd_parser.h"
#include "gtest/gtest.h"
#include "xml/sax_parser.h"
#include "xpath/query_tree.h"

namespace twigm {
namespace {

using analysis::AnalyzerOptions;
using analysis::DtdStructure;
using analysis::kUnboundedDepth;
using analysis::QueryAnalysis;

// A small non-recursive DTD with an enumerated attribute:
//   a (depth 1) -> b* (depth 2) -> d (depth 3)
//              \-> c? (depth 2, #PCDATA)
constexpr char kFlatDtd[] = R"(
<!ELEMENT a (b*, c?)>
<!ELEMENT b (d)>
<!ELEMENT c (#PCDATA)>
<!ELEMENT d EMPTY>
<!ATTLIST a kind (x|y) #REQUIRED>
)";

// A recursive DTD: s nests itself.
constexpr char kRecursiveDtd[] = R"(
<!ELEMENT s (s?, t?)>
<!ELEMENT t EMPTY>
)";

DtdStructure BuildStructure(const dtd::Dtd& dtd) {
  Result<DtdStructure> built = DtdStructure::Build(dtd);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

dtd::Dtd ParseDtdOrDie(std::string_view text) {
  Result<dtd::Dtd> parsed = dtd::ParseDtd(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

TEST(DtdStructureTest, DepthBoundsFlat) {
  dtd::Dtd dtd = ParseDtdOrDie(kFlatDtd);
  DtdStructure s = BuildStructure(dtd);
  EXPECT_EQ(s.max_document_depth(), 3);

  const int a = s.Find("a"), b = s.Find("b"), c = s.Find("c"), d = s.Find("d");
  ASSERT_GE(a, 0);
  ASSERT_GE(d, 0);
  EXPECT_EQ(s.info(a).min_depth, 1);
  EXPECT_EQ(s.info(a).max_depth, 1);
  EXPECT_EQ(s.info(b).min_depth, 2);
  EXPECT_EQ(s.info(b).max_depth, 2);
  EXPECT_EQ(s.info(c).min_depth, 2);
  EXPECT_EQ(s.info(c).max_depth, 2);
  EXPECT_EQ(s.info(d).min_depth, 3);
  EXPECT_EQ(s.info(d).max_depth, 3);
  EXPECT_EQ(s.Find("nope"), -1);

  EXPECT_TRUE(s.CanReach(a, d));
  EXPECT_FALSE(s.CanReach(c, d));
  EXPECT_TRUE(s.info(c).has_pcdata);
  EXPECT_FALSE(s.info(b).has_pcdata);
}

TEST(DtdStructureTest, DepthBoundsRecursive) {
  dtd::Dtd dtd = ParseDtdOrDie(kRecursiveDtd);
  DtdStructure st = BuildStructure(dtd);
  EXPECT_EQ(st.max_document_depth(), kUnboundedDepth);
  const int s = st.Find("s"), t = st.Find("t");
  EXPECT_EQ(st.info(s).min_depth, 1);
  EXPECT_EQ(st.info(s).max_depth, kUnboundedDepth);
  EXPECT_EQ(st.info(t).min_depth, 2);
  // t hangs below the recursive s, so it is depth-unbounded too.
  EXPECT_EQ(st.info(t).max_depth, kUnboundedDepth);
  EXPECT_TRUE(st.CanReach(s, s));
  EXPECT_FALSE(st.CanReach(t, s));
}

TEST(DtdStructureTest, Reachability) {
  dtd::Dtd dtd = ParseDtdOrDie(kFlatDtd);
  DtdStructure s = BuildStructure(dtd);
  const int a = s.Find("a"), b = s.Find("b"), d = s.Find("d");

  std::vector<bool> one = s.ReachableExact(a, 1);
  EXPECT_TRUE(one[b]);
  EXPECT_FALSE(one[d]);
  std::vector<bool> two = s.ReachableExact(a, 2);
  EXPECT_FALSE(two[b]);
  EXPECT_TRUE(two[d]);
  std::vector<bool> atleast = s.ReachableAtLeast(a, 1);
  EXPECT_TRUE(atleast[b]);
  EXPECT_TRUE(atleast[d]);

  std::vector<bool> depth2 = s.AtDepthExact(2);
  EXPECT_TRUE(depth2[b]);
  EXPECT_FALSE(depth2[a]);
  EXPECT_FALSE(depth2[d]);
}

TEST(DtdStructureTest, Attributes) {
  dtd::Dtd dtd = ParseDtdOrDie(kFlatDtd);
  DtdStructure s = BuildStructure(dtd);
  const int a = s.Find("a"), b = s.Find("b");
  EXPECT_TRUE(s.HasAttribute(a, "kind"));
  EXPECT_FALSE(s.HasAttribute(a, "other"));
  EXPECT_FALSE(s.HasAttribute(b, "kind"));
  const std::vector<std::string>* values = s.EnumValues(a, "kind");
  ASSERT_NE(values, nullptr);
  EXPECT_EQ(values->size(), 2u);
}

// --- Satisfiability -------------------------------------------------------

QueryAnalysis Analyze(const std::string& query, const DtdStructure* dtd) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  EXPECT_TRUE(tree.ok()) << query << ": " << tree.status().ToString();
  AnalyzerOptions options;
  options.dtd = dtd;
  return analysis::AnalyzeQuery(tree.value(), options);
}

TEST(SatisfiabilityTest, FlatDtd) {
  dtd::Dtd dtd = ParseDtdOrDie(kFlatDtd);
  DtdStructure s = BuildStructure(dtd);

  EXPECT_TRUE(Analyze("/a/b/d", &s).satisfiable);
  EXPECT_TRUE(Analyze("//d", &s).satisfiable);
  EXPECT_TRUE(Analyze("/*/b", &s).satisfiable);
  EXPECT_TRUE(Analyze("/a[c]/b", &s).satisfiable);

  // d is not a direct child of a.
  EXPECT_FALSE(Analyze("/a/d", &s).satisfiable);
  // Unknown element.
  QueryAnalysis unknown = Analyze("//e", &s);
  EXPECT_FALSE(unknown.satisfiable);
  EXPECT_NE(unknown.diagnostic.find("'e'"), std::string::npos);
  // b cannot be the document root.
  EXPECT_FALSE(Analyze("/b", &s).satisfiable);
  // Nothing below d.
  EXPECT_FALSE(Analyze("//d//c", &s).satisfiable);
  EXPECT_FALSE(Analyze("//d/*", &s).satisfiable);
  // c occurs only at depth 2; a wildcard double step puts it at >= 3.
  EXPECT_FALSE(Analyze("/*/*/c", &s).satisfiable);
}

TEST(SatisfiabilityTest, ValueTests) {
  dtd::Dtd dtd = ParseDtdOrDie(kFlatDtd);
  DtdStructure s = BuildStructure(dtd);

  // c carries #PCDATA, b does not.
  EXPECT_TRUE(Analyze("/a[c=\"x\"]", &s).satisfiable);
  QueryAnalysis textless = Analyze("/a[b=\"x\"]", &s);
  EXPECT_FALSE(textless.satisfiable);
  EXPECT_NE(textless.diagnostic.find("text-less"), std::string::npos);
  // Equality against "" also matches text-less elements — keep it.
  EXPECT_TRUE(Analyze("/a[b=\"\"]", &s).satisfiable);
}

TEST(SatisfiabilityTest, AttributeDeclarations) {
  dtd::Dtd dtd = ParseDtdOrDie(kFlatDtd);
  DtdStructure s = BuildStructure(dtd);

  EXPECT_TRUE(Analyze("/a[@kind]", &s).satisfiable);
  EXPECT_TRUE(Analyze("/a[@kind=\"x\"]", &s).satisfiable);
  // Outside the enumerated type.
  QueryAnalysis outside = Analyze("/a[@kind=\"z\"]", &s);
  EXPECT_FALSE(outside.satisfiable);
  EXPECT_NE(outside.diagnostic.find("enumerated"), std::string::npos);
  // Undeclared attribute / wrong element.
  EXPECT_FALSE(Analyze("/a[@missing]", &s).satisfiable);
  EXPECT_FALSE(Analyze("/a/b[@kind]", &s).satisfiable);
}

TEST(SatisfiabilityTest, NoDtdMeansAlwaysSatisfiable) {
  QueryAnalysis a = Analyze("//zzz[@nope]", nullptr);
  EXPECT_TRUE(a.satisfiable);
  EXPECT_TRUE(a.diagnostic.empty());
}

// --- Minimization ---------------------------------------------------------

std::string Minimize(const std::string& query, size_t* removed = nullptr) {
  QueryAnalysis a = Analyze(query, nullptr);
  if (removed != nullptr) *removed = a.branches_removed;
  return a.minimized;
}

TEST(MinimizationTest, DuplicatePredicate) {
  size_t removed = 0;
  EXPECT_EQ(Minimize("//a[b][b]", &removed), "//a[b]");
  EXPECT_EQ(removed, 1u);
}

TEST(MinimizationTest, ImpliedBySiblingSubtree) {
  size_t removed = 0;
  EXPECT_EQ(Minimize("//a[b/c][b]", &removed), "//a[b[c]]");
  EXPECT_EQ(removed, 1u);
  // Same, in the other syntactic order.
  EXPECT_EQ(Minimize("//a[b][b/c]", &removed), "//a[b[c]]");
  EXPECT_EQ(removed, 1u);
}

TEST(MinimizationTest, ImpliedByOutputPathContinuation) {
  size_t removed = 0;
  EXPECT_EQ(Minimize("//a[b]/b", &removed), "//a/b");
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(Minimize("//a[//b]/c/b", &removed), "//a/c/b");
  EXPECT_EQ(removed, 1u);
}

TEST(MinimizationTest, DescendantImpliedByDeeperBranch) {
  size_t removed = 0;
  // The b inside [c/b] is strictly below the context, satisfying [//b].
  EXPECT_EQ(Minimize("//a[//b][c/b]", &removed), "//a[c[b]]");
  EXPECT_EQ(removed, 1u);
}

TEST(MinimizationTest, ValueTestImpliesBareBranch) {
  size_t removed = 0;
  EXPECT_EQ(Minimize("//a[b=\"1\"][b]", &removed), "//a[b=\"1\"]");
  EXPECT_EQ(removed, 1u);
}

TEST(MinimizationTest, KeepsIndependentBranches) {
  size_t removed = 0;
  Minimize("//a[b][c]", &removed);
  EXPECT_EQ(removed, 0u);
  Minimize("//a[b/c][b/d]", &removed);
  EXPECT_EQ(removed, 0u);
  // A value test is stronger than the bare branch: not removable.
  Minimize("//a[b=\"1\"]", &removed);
  EXPECT_EQ(removed, 0u);
}

TEST(MinimizationTest, Idempotent) {
  const std::vector<std::string> queries = {
      "//a[b][b]", "//a[b/c][b]", "//a[b]/b", "//a[//b][c/b]",
      "//a[b][c][b/d]",
  };
  for (const std::string& q : queries) {
    const std::string once = Minimize(q);
    size_t removed = 0;
    const std::string twice = Minimize(once, &removed);
    EXPECT_EQ(once, twice) << q;
    EXPECT_EQ(removed, 0u) << q;
  }
}

TEST(MinimizationTest, CanonicalPredicateOrder) {
  // Equivalent queries that differ only in branch order share one
  // canonical rendering.
  EXPECT_EQ(Minimize("//a[c][b]"), Minimize("//a[b][c]"));
}

TEST(MinimizationTest, PreservesResults) {
  const std::string doc =
      "<a><b><c/></b><b><d/></b><x><a><b><c/></b></a></x></a>";
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"//a[b][b]", Minimize("//a[b][b]")},
      {"//a[b/c][b]", Minimize("//a[b/c][b]")},
      {"//a[b]/b", Minimize("//a[b]/b")},
  };
  for (const auto& [original, minimized] : pairs) {
    Result<std::vector<xml::NodeId>> lhs = core::EvaluateToIds(original, doc);
    Result<std::vector<xml::NodeId>> rhs = core::EvaluateToIds(minimized, doc);
    ASSERT_TRUE(lhs.ok() && rhs.ok());
    std::vector<xml::NodeId> l = std::move(lhs).value();
    std::vector<xml::NodeId> r = std::move(rhs).value();
    std::sort(l.begin(), l.end());
    std::sort(r.begin(), r.end());
    EXPECT_EQ(l, r) << original << " vs " << minimized;
  }
}

// --- Containment ----------------------------------------------------------

bool Contains(const std::string& super, const std::string& sub) {
  Result<xpath::QueryTree> a = xpath::QueryTree::Parse(super);
  Result<xpath::QueryTree> b = xpath::QueryTree::Parse(sub);
  EXPECT_TRUE(a.ok() && b.ok());
  return analysis::QueryContains(a.value(), b.value());
}

TEST(ContainmentTest, AxisRelaxation) {
  EXPECT_TRUE(Contains("//a", "/x/a"));
  EXPECT_TRUE(Contains("//a/b", "/a/b"));
  EXPECT_FALSE(Contains("/a/b", "//a/b"));
  // //a//b admits deeper b's than //a/b.
  EXPECT_TRUE(Contains("//a//b", "//a/b"));
  EXPECT_FALSE(Contains("//a/b", "//a//b"));
}

TEST(ContainmentTest, WildcardTraps) {
  // '*' still costs exactly one level.
  EXPECT_TRUE(Contains("//a//b", "//a/*/b"));
  EXPECT_FALSE(Contains("//a/*/b", "//a//b"));
  EXPECT_TRUE(Contains("//*", "//a"));
  EXPECT_FALSE(Contains("//a", "//*"));
  EXPECT_TRUE(Contains("//*/b", "//a/b"));
}

TEST(ContainmentTest, Predicates) {
  EXPECT_TRUE(Contains("//a[b]", "//a[b][c]"));
  EXPECT_FALSE(Contains("//a[b][c]", "//a[b]"));
  // Predicate relaxation: [//b] is weaker than [c/b].
  EXPECT_TRUE(Contains("//a[//b]", "//a[c/b]"));
  EXPECT_FALSE(Contains("//a[c/b]", "//a[//b]"));
  // A predicate can be witnessed by the contained query's own spine
  // continuation: every //a/c result is also an //a[c]/c result.
  EXPECT_TRUE(Contains("//a[c]/c", "//a/c"));
  EXPECT_TRUE(Contains("//a/c", "//a[b]/c"));
}

TEST(ContainmentTest, MutualContainmentIsEquivalence) {
  EXPECT_TRUE(Contains("//a[b][c]", "//a[c][b]"));
  EXPECT_TRUE(Contains("//a[c][b]", "//a[b][c]"));
}

TEST(ContainmentTest, SolMustAgree) {
  // Same tree shape, different return node: no containment either way.
  EXPECT_FALSE(Contains("//a/b", "//a"));
  EXPECT_FALSE(Contains("//a", "//a/b"));
}

// --- Level bounds ---------------------------------------------------------

core::MachineGraph BuildGraph(const std::string& query) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  EXPECT_TRUE(tree.ok());
  Result<core::MachineGraph> graph = core::MachineGraph::Build(tree.value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(LevelBoundsTest, FlatDtdWindows) {
  dtd::Dtd dtd = ParseDtdOrDie(kFlatDtd);
  DtdStructure s = BuildStructure(dtd);

  core::MachineGraph graph = BuildGraph("//d");
  core::LevelBounds bounds = analysis::ComputeMachineLevelBounds(graph, s);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0].min_level, 3);
  EXPECT_EQ(bounds[0].max_level, 3);

  core::MachineGraph miss = BuildGraph("/a/d");
  core::LevelBounds none = analysis::ComputeMachineLevelBounds(miss, s);
  EXPECT_TRUE(none.back().empty());
}

TEST(LevelBoundsTest, RecursiveDtdLeavesMaxOpen) {
  dtd::Dtd dtd = ParseDtdOrDie(kRecursiveDtd);
  DtdStructure st = BuildStructure(dtd);
  core::MachineGraph graph = BuildGraph("//t");
  core::LevelBounds bounds = analysis::ComputeMachineLevelBounds(graph, st);
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0].min_level, 2);
  EXPECT_EQ(bounds[0].max_level, -1);
}

// Level-bounded machines must emit the same results with no more pushes.
TEST(LevelBoundsTest, PreservesResultsWithFewerPushes) {
  dtd::Dtd dtd = ParseDtdOrDie(kFlatDtd);
  DtdStructure s = BuildStructure(dtd);

  dtd::GeneratorOptions gen;
  gen.seed = 7;
  gen.max_repeats = 4;
  Result<std::string> doc = dtd::GenerateDocument(dtd, "a", gen);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  const std::vector<std::string> queries = {"//d", "//b/d", "/a//d",
                                            "//a[b]/c", "/a/b[d]"};
  for (const std::string& query : queries) {
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
    ASSERT_TRUE(tree.ok());

    auto run = [&](bool bounded, uint64_t* pushes) {
      core::VectorResultSink sink;
      Result<std::unique_ptr<core::TwigMachine>> machine =
          core::TwigMachine::Create(tree.value(), &sink);
      EXPECT_TRUE(machine.ok());
      if (bounded) {
        machine.value()->set_level_bounds(
            analysis::ComputeMachineLevelBounds(machine.value()->graph(), s));
      }
      xml::EventDriver driver(machine.value().get());
      xml::SaxParser parser(&driver);
      EXPECT_TRUE(parser.ParseAll(doc.value()).ok());
      *pushes = machine.value()->stats().pushes;
      std::vector<xml::NodeId> ids = sink.TakeIds();
      std::sort(ids.begin(), ids.end());
      return ids;
    };

    uint64_t plain_pushes = 0, bounded_pushes = 0;
    std::vector<xml::NodeId> plain = run(false, &plain_pushes);
    std::vector<xml::NodeId> bounded = run(true, &bounded_pushes);
    EXPECT_EQ(plain, bounded) << query;
    EXPECT_LE(bounded_pushes, plain_pushes) << query;
  }
}

// --- Query-set analysis ---------------------------------------------------

TEST(QuerySetTest, PrunesAndForwards) {
  dtd::Dtd dtd = ParseDtdOrDie(kFlatDtd);
  DtdStructure s = BuildStructure(dtd);

  AnalyzerOptions options;
  options.dtd = &s;
  const std::vector<std::string> queries = {
      "//a[b][c]",  // 0: representative
      "//a[c][b]",  // 1: equivalent to 0 (order)
      "/a/d",       // 2: unsatisfiable
      "//d",        // 3: runs on its own
      "//a[b][b]",  // 4: minimizes to //a[b], runs on its own
  };
  Result<analysis::QuerySetAnalysis> analyzed =
      analysis::AnalyzeQuerySet(queries, options);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  const analysis::QuerySetAnalysis& a = analyzed.value();

  EXPECT_EQ(a.unsatisfiable, 1u);
  EXPECT_EQ(a.forwarded, 1u);
  EXPECT_EQ(a.pruned(), 2u);
  EXPECT_GE(a.branches_minimized, 1u);
  EXPECT_EQ(a.queries[1].forwarded_to, 0u);
  EXPECT_FALSE(a.queries[2].satisfiable);
  EXPECT_EQ(a.queries[3].forwarded_to, 3u);
  EXPECT_EQ(a.queries[4].minimized, "//a[b]");
}

TEST(QuerySetTest, BadQueryNamesIndex) {
  Result<analysis::QuerySetAnalysis> analyzed =
      analysis::AnalyzeQuerySet({"//a", "///"}, AnalyzerOptions());
  ASSERT_FALSE(analyzed.ok());
  EXPECT_NE(analyzed.status().message().find("query #1"), std::string::npos);
}

}  // namespace
}  // namespace twigm
