// Tests for the persistent structural index (src/index/): builder/reader
// round-trips, label correctness, and a differential suite pinning the
// IndexedEvaluator to the DOM oracle and the streaming engines over 100+
// random documents — indexed, streaming, and DOM runs must produce
// identical match sets (same pre-order NodeIds), and every indexed match
// must carry the byte offset of its element's start tag.

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/dom_eval.h"
#include "common/random.h"
#include "core/evaluator.h"
#include "core/result_sink.h"
#include "gtest/gtest.h"
#include "index/index_builder.h"
#include "index/index_reader.h"
#include "index/indexed_evaluator.h"
#include "xml/xml_writer.h"
#include "xpath/query_tree.h"

namespace twigm::index {
namespace {

// Builds the index image for `doc`, feeding it in `chunk`-byte pieces
// (0 means one chunk). Fails the test on any builder error.
std::string MustBuildImage(std::string_view doc, size_t chunk = 0) {
  IndexBuilder builder;
  if (chunk == 0) chunk = doc.size();
  for (size_t pos = 0; pos < doc.size(); pos += chunk) {
    const size_t len = std::min(chunk, doc.size() - pos);
    EXPECT_TRUE(builder.Consume({doc.substr(pos, len), false}).ok());
  }
  EXPECT_TRUE(builder.Consume({std::string_view(), true}).ok());
  std::string image;
  EXPECT_TRUE(builder.Serialize(&image).ok());
  return image;
}

std::unique_ptr<IndexReader> MustOpen(std::string_view doc) {
  Result<std::unique_ptr<IndexReader>> reader =
      IndexReader::OpenBytes(MustBuildImage(doc));
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  return reader.ok() ? std::move(reader).value() : nullptr;
}

// Runs `query` through the IndexedEvaluator; returns matches in emission
// order (which must already be document order).
std::vector<core::MatchInfo> IndexedMatches(const IndexReader& reader,
                                            std::string_view query) {
  Result<std::unique_ptr<IndexedEvaluator>> eval =
      IndexedEvaluator::Create(query, &reader);
  EXPECT_TRUE(eval.ok()) << query << ": " << eval.status().ToString();
  if (!eval.ok()) return {};
  core::VectorResultSink sink;
  EXPECT_TRUE(eval.value()->Evaluate(&sink).ok());
  return sink.matches();
}

std::vector<xml::NodeId> IndexedIds(const IndexReader& reader,
                                    std::string_view query) {
  std::vector<xml::NodeId> ids;
  for (const core::MatchInfo& m : IndexedMatches(reader, query)) {
    ids.push_back(m.id);
  }
  return ids;
}

// ---------------------------------------------------------------------------
// Labels and stored facts

TEST(IndexBuilderTest, LabelsPrePostLevel) {
  // <a>          pre=1 post=4 level=1
  //   <b/>       pre=2 post=1 level=2
  //   <c>        pre=3 post=3 level=2
  //     <b/>     pre=4 post=2 level=3
  //   </c>
  // </a>
  const std::string doc = "<a><b/><c><b/></c></a>";
  std::unique_ptr<IndexReader> reader = MustOpen(doc);
  ASSERT_NE(reader, nullptr);
  ASSERT_EQ(reader->element_count(), 4u);
  const uint32_t* post = reader->post();
  const uint32_t* level = reader->level();
  EXPECT_EQ(post[0], 4u);
  EXPECT_EQ(post[1], 1u);
  EXPECT_EQ(post[2], 3u);
  EXPECT_EQ(post[3], 2u);
  EXPECT_EQ(level[0], 1u);
  EXPECT_EQ(level[1], 2u);
  EXPECT_EQ(level[2], 2u);
  EXPECT_EQ(level[3], 3u);
  // Containment via the labels.
  EXPECT_TRUE(reader->IsAncestor(1, 2));
  EXPECT_TRUE(reader->IsAncestor(1, 4));
  EXPECT_TRUE(reader->IsAncestor(3, 4));
  EXPECT_FALSE(reader->IsAncestor(2, 4));
  EXPECT_FALSE(reader->IsAncestor(2, 3));
  EXPECT_FALSE(reader->IsAncestor(1, 1));
}

TEST(IndexBuilderTest, PostingsAreSortedPerSymbol) {
  std::unique_ptr<IndexReader> reader =
      MustOpen("<a><b/><c><b/></c><b/></a>");
  ASSERT_NE(reader, nullptr);
  const xml::SymbolId b = reader->FindSymbol("b");
  ASSERT_NE(b, xml::kNoSymbol);
  const IndexReader::U32Span postings = reader->postings(b);
  ASSERT_EQ(postings.size, 3u);
  EXPECT_EQ(postings.data[0], 2u);
  EXPECT_EQ(postings.data[1], 4u);
  EXPECT_EQ(postings.data[2], 5u);
  // A name the corpus never used as a tag has empty postings.
  EXPECT_EQ(reader->FindSymbol("ghost"), xml::kNoSymbol);
  EXPECT_EQ(reader->postings(xml::kNoSymbol).size, 0u);
}

TEST(IndexBuilderTest, DirectTextConcatenatesAroundChildren) {
  // Direct text of <a> is "xz" (the text inside <b> belongs to b).
  std::unique_ptr<IndexReader> reader = MustOpen("<a>x<b>y</b>z</a>");
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->DirectText(1), "xz");
  EXPECT_EQ(reader->DirectText(2), "y");
}

TEST(IndexBuilderTest, ElementsWithoutTextReadAsEmpty) {
  std::unique_ptr<IndexReader> reader = MustOpen("<a><b/><c>t</c></a>");
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->DirectText(1), "");
  EXPECT_EQ(reader->DirectText(2), "");
  EXPECT_EQ(reader->DirectText(3), "t");
}

TEST(IndexBuilderTest, AttributesStoredInDocumentOrder) {
  std::unique_ptr<IndexReader> reader =
      MustOpen("<a x=\"1\" y=\"two\"><b y=\"3\"/></a>");
  ASSERT_NE(reader, nullptr);
  size_t begin = 0;
  size_t end = 0;
  reader->AttrRange(1, &begin, &end);
  ASSERT_EQ(end - begin, 2u);
  EXPECT_EQ(reader->attr_at(begin).name_symbol, reader->FindSymbol("x"));
  EXPECT_EQ(reader->attr_at(begin).value, "1");
  EXPECT_EQ(reader->attr_at(begin + 1).name_symbol, reader->FindSymbol("y"));
  EXPECT_EQ(reader->attr_at(begin + 1).value, "two");
  reader->AttrRange(2, &begin, &end);
  ASSERT_EQ(end - begin, 1u);
  EXPECT_EQ(reader->attr_at(begin).value, "3");
  // No attributes: empty range, not an error.
  reader->AttrRange(3, &begin, &end);  // past the last element
  EXPECT_EQ(begin, end);
}

TEST(IndexBuilderTest, ByteOffsetsPointAtStartTags) {
  const std::string doc =
      "<root>text<child a=\"v\">more</child><child/><deep><x/></deep></root>";
  std::unique_ptr<IndexReader> reader = MustOpen(doc);
  ASSERT_NE(reader, nullptr);
  const uint64_t* offsets = reader->byte_offset();
  const uint32_t* symbols = reader->symbol();
  for (uint64_t pre = 1; pre <= reader->element_count(); ++pre) {
    const uint64_t off = offsets[pre - 1];
    ASSERT_LT(off, doc.size());
    EXPECT_EQ(doc[off], '<') << "pre=" << pre;
    const std::string_view name = reader->dictionary().name(symbols[pre - 1]);
    EXPECT_EQ(doc.substr(off + 1, name.size()), name) << "pre=" << pre;
  }
}

TEST(IndexBuilderTest, ChunkingDoesNotChangeTheImage) {
  const std::string doc =
      "<catalog><book id=\"1\"><title>T&amp;A</title></book>"
      "<!-- note --><misc/><longtagname attr='v'>text</longtagname>"
      "</catalog>";
  const std::string whole = MustBuildImage(doc);
  for (size_t chunk = 1; chunk <= 17; ++chunk) {
    EXPECT_EQ(MustBuildImage(doc, chunk), whole) << "chunk=" << chunk;
  }
}

TEST(IndexBuilderTest, SerializeBeforeLastChunkFails) {
  IndexBuilder builder;
  ASSERT_TRUE(builder.Consume({"<a><b/>", false}).ok());
  std::string image;
  EXPECT_FALSE(builder.Serialize(&image).ok());
}

TEST(IndexBuilderTest, MalformedDocumentIsStickyError) {
  IndexBuilder builder;
  EXPECT_FALSE(builder.Consume({"<a></b>", true}).ok());
  EXPECT_FALSE(builder.Consume({"", true}).ok());  // still the same error
  std::string image;
  EXPECT_FALSE(builder.Serialize(&image).ok());
}

TEST(IndexReaderTest, WriteFileOpenRoundTrip) {
  const std::string doc = "<a><b>t</b><c><b/></c></a>";
  IndexBuilder builder;
  ASSERT_TRUE(builder.Consume({doc, true}).ok());
  const std::string path = ::testing::TempDir() + "/roundtrip.twgmidx";
  ASSERT_TRUE(builder.WriteFile(path).ok());
  Result<std::unique_ptr<IndexReader>> reader = IndexReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value()->element_count(), 4u);
  EXPECT_EQ(reader.value()->document_bytes(), doc.size());
  EXPECT_EQ(IndexedIds(*reader.value(), "//b"),
            (std::vector<xml::NodeId>{2, 4}));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// IndexedEvaluator semantics on hand-checked documents

TEST(IndexedEvaluatorTest, AxesAndAnchoring) {
  std::unique_ptr<IndexReader> reader =
      MustOpen("<a><b><a><b/></a></b></a>");
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(IndexedIds(*reader, "//b"), (std::vector<xml::NodeId>{2, 4}));
  EXPECT_EQ(IndexedIds(*reader, "/a/b"), (std::vector<xml::NodeId>{2}));
  EXPECT_EQ(IndexedIds(*reader, "/b"), (std::vector<xml::NodeId>{}));
  EXPECT_EQ(IndexedIds(*reader, "//a//b"), (std::vector<xml::NodeId>{2, 4}));
  EXPECT_EQ(IndexedIds(*reader, "//a/b/a"), (std::vector<xml::NodeId>{3}));
  EXPECT_EQ(IndexedIds(*reader, "//*"),
            (std::vector<xml::NodeId>{1, 2, 3, 4}));
}

TEST(IndexedEvaluatorTest, PredicatesAndValueTests) {
  std::unique_ptr<IndexReader> reader = MustOpen(
      "<lib><book year=\"2001\"><title>x</title></book>"
      "<book year=\"1999\"><title>y</title></book>"
      "<book><title>x</title></book></lib>");
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(IndexedIds(*reader, "//book[@year]"),
            (std::vector<xml::NodeId>{2, 4}));
  EXPECT_EQ(IndexedIds(*reader, "//book[@year=\"2001\"]"),
            (std::vector<xml::NodeId>{2}));
  EXPECT_EQ(IndexedIds(*reader, "//book[@year>2000]"),
            (std::vector<xml::NodeId>{2}));
  EXPECT_EQ(IndexedIds(*reader, "//book[title=\"x\"]"),
            (std::vector<xml::NodeId>{2, 6}));
  EXPECT_EQ(IndexedIds(*reader, "//book[title=\"x\"]/title"),
            (std::vector<xml::NodeId>{3, 7}));
  EXPECT_EQ(IndexedIds(*reader, "//book[@missing]"),
            (std::vector<xml::NodeId>{}));
}

TEST(IndexedEvaluatorTest, UnknownTagYieldsNoMatchesNotAnError) {
  std::unique_ptr<IndexReader> reader = MustOpen("<a><b/></a>");
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(IndexedIds(*reader, "//nosuchtag"), (std::vector<xml::NodeId>{}));
  EXPECT_EQ(IndexedIds(*reader, "//a[nosuchtag]"),
            (std::vector<xml::NodeId>{}));
}

TEST(IndexedEvaluatorTest, AttributeReturnNodeIsRejected) {
  std::unique_ptr<IndexReader> reader = MustOpen("<a x=\"1\"/>");
  ASSERT_NE(reader, nullptr);
  Result<std::unique_ptr<IndexedEvaluator>> eval =
      IndexedEvaluator::Create("//a/@x", reader.get());
  EXPECT_FALSE(eval.ok());
}

TEST(IndexedEvaluatorTest, EvaluateIsRepeatable) {
  std::unique_ptr<IndexReader> reader =
      MustOpen("<a><b/><c><b/></c></a>");
  ASSERT_NE(reader, nullptr);
  Result<std::unique_ptr<IndexedEvaluator>> eval =
      IndexedEvaluator::Create("//a//b", reader.get());
  ASSERT_TRUE(eval.ok());
  for (int run = 0; run < 3; ++run) {
    core::VectorResultSink sink;
    ASSERT_TRUE(eval.value()->Evaluate(&sink).ok());
    EXPECT_EQ(sink.ids(), (std::vector<xml::NodeId>{2, 4})) << "run " << run;
    EXPECT_EQ(eval.value()->stats().results, 2u);
  }
}

// ---------------------------------------------------------------------------
// Differential suite: random documents + random XP{/,//,*,[]} queries; the
// indexed evaluator must agree with the DOM oracle and the streaming TwigM
// engine on every one.

struct DocParams {
  int max_depth = 6;
  int max_children = 4;
  double attr_probability = 0.3;
  double text_probability = 0.3;
};

void EmitRandomElement(Rng* rng, const DocParams& params, int depth,
                       xml::XmlWriter* w) {
  static const char* kTags[] = {"a", "b", "c", "d", "e"};
  static const char* kAttrs[] = {"x", "y"};
  static const char* kTexts[] = {"u", "v", "w", "10", "3"};
  w->Open(depth == 1 ? "a" : kTags[rng->Below(5)]);
  if (rng->Chance(params.attr_probability)) {
    w->Attr(kAttrs[rng->Below(2)], kTexts[rng->Below(5)]);
  }
  if (rng->Chance(params.text_probability)) {
    w->Text(kTexts[rng->Below(5)]);
  }
  if (depth < params.max_depth) {
    const int children = static_cast<int>(
        rng->Below(static_cast<uint64_t>(params.max_children) + 1));
    for (int i = 0; i < children; ++i) {
      EmitRandomElement(rng, params, depth + 1, w);
    }
  }
  w->Close();
}

std::string RandomDocument(Rng* rng) {
  xml::XmlWriter w(/*with_declaration=*/false);
  EmitRandomElement(rng, DocParams(), 1, &w);
  return std::move(w).TakeString();
}

std::string RandomSteps(Rng* rng, int pred_depth, bool first_is_anchored);

std::string RandomPredicate(Rng* rng, int pred_depth) {
  if (rng->Chance(0.25)) {
    std::string out = "[@";
    out += rng->Chance(0.5) ? "x" : "y";
    if (rng->Chance(0.4)) {
      out += "=\"" + std::string(rng->Chance(0.5) ? "u" : "10") + "\"";
    }
    out += "]";
    return out;
  }
  std::string out = "[";
  out += RandomSteps(rng, pred_depth, /*first_is_anchored=*/false);
  if (rng->Chance(0.3)) {
    static const char* kOps[] = {"=", "!=", "<", ">="};
    out += kOps[rng->Below(4)];
    out += rng->Chance(0.5) ? "\"u\"" : "5";
  }
  out += "]";
  return out;
}

std::string RandomStep(Rng* rng, int pred_depth) {
  static const char* kTags[] = {"a", "b", "c", "d", "e"};
  std::string out = rng->Chance(0.15) ? "*" : kTags[rng->Below(5)];
  if (pred_depth < 2) {
    while (rng->Chance(0.3)) {
      out += RandomPredicate(rng, pred_depth + 1);
    }
  }
  return out;
}

std::string RandomSteps(Rng* rng, int pred_depth, bool first_is_anchored) {
  const int steps = 1 + static_cast<int>(rng->Below(3));
  std::string out;
  for (int i = 0; i < steps; ++i) {
    const bool descendant = rng->Chance(0.4);
    if (i == 0) {
      if (first_is_anchored) {
        out += descendant ? "//" : "/";
      } else if (descendant) {
        out += "//";
      }
    } else {
      out += descendant ? "//" : "/";
    }
    out += RandomStep(rng, pred_depth);
  }
  return out;
}

TEST(IndexedDifferentialTest, MatchesOracleAndStreamingOn100Documents) {
  Rng rng(0x1DEC5);
  int nonempty = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const std::string doc = RandomDocument(&rng);
    const std::string query = RandomSteps(&rng, 0, /*first_is_anchored=*/true);
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
    ASSERT_TRUE(tree.ok()) << query << ": " << tree.status().ToString();

    // DOM oracle.
    Result<std::vector<xml::NodeId>> oracle =
        baselines::EvaluateOnDom(tree.value(), doc);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    std::vector<xml::NodeId> expected = std::move(oracle).value();
    std::sort(expected.begin(), expected.end());

    // Streaming TwigM.
    Result<std::vector<xml::NodeId>> stream =
        core::EvaluateToIds(query, doc, core::EvaluatorOptions());
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    std::vector<xml::NodeId> stream_ids = std::move(stream).value();
    std::sort(stream_ids.begin(), stream_ids.end());
    ASSERT_EQ(stream_ids, expected) << "query " << query << "\ndoc " << doc;

    // Indexed: build, persist, reload, evaluate.
    Result<std::unique_ptr<IndexReader>> reader =
        IndexReader::OpenBytes(MustBuildImage(doc));
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    const std::vector<core::MatchInfo> matches =
        IndexedMatches(*reader.value(), query);
    std::vector<xml::NodeId> indexed_ids;
    for (const core::MatchInfo& m : matches) indexed_ids.push_back(m.id);
    // Emission order is document order, which for pre ids is sorted order.
    ASSERT_TRUE(std::is_sorted(indexed_ids.begin(), indexed_ids.end()));
    ASSERT_EQ(indexed_ids, expected) << "query " << query << "\ndoc " << doc;

    // Every match carries its element's start-tag byte offset.
    for (const core::MatchInfo& m : matches) {
      const uint64_t off = reader.value()->byte_offset()[m.id - 1];
      ASSERT_EQ(m.byte_offset, off);
      ASSERT_LT(off, doc.size());
      ASSERT_EQ(doc[off], '<');
    }
    if (!expected.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 20);
}

}  // namespace
}  // namespace twigm::index
