// Tests for the XPathStreamProcessor facade: engine selection, chunked
// feeding, reuse, and error propagation.

#include "core/evaluator.h"

#include <string>

#include "common/random.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace twigm {
namespace {

using core::EngineKind;
using core::EvaluatorOptions;
using core::VectorResultSink;
using core::XPathStreamProcessor;
using testing::Ids;
using testing::MustEvaluate;

TEST(EvaluatorTest, AutoSelectsPathMForLinearQueries) {
  VectorResultSink sink;
  auto proc = XPathStreamProcessor::Create("//a//b", &sink);
  ASSERT_TRUE(proc.ok());
  EXPECT_EQ(proc.value()->engine_kind(), EngineKind::kPathM);
}

TEST(EvaluatorTest, AutoSelectsBranchMForChildOnlyPredicates) {
  VectorResultSink sink;
  auto proc = XPathStreamProcessor::Create("/a/b[c]", &sink);
  ASSERT_TRUE(proc.ok());
  EXPECT_EQ(proc.value()->engine_kind(), EngineKind::kBranchM);
}

TEST(EvaluatorTest, AutoSelectsTwigMForTheRest) {
  VectorResultSink sink;
  auto proc = XPathStreamProcessor::Create("//a[b]//c", &sink);
  ASSERT_TRUE(proc.ok());
  EXPECT_EQ(proc.value()->engine_kind(), EngineKind::kTwigM);

  VectorResultSink sink2;
  auto proc2 = XPathStreamProcessor::Create("/a/*[b]", &sink2);
  ASSERT_TRUE(proc2.ok());
  EXPECT_EQ(proc2.value()->engine_kind(), EngineKind::kTwigM);

  // Linear query with a value test also needs TwigM (PathM has no state
  // for text accumulation).
  VectorResultSink sink3;
  auto proc3 = XPathStreamProcessor::Create("//a[.=\"x\"]", &sink3);
  ASSERT_TRUE(proc3.ok());
  EXPECT_EQ(proc3.value()->engine_kind(), EngineKind::kTwigM);
}

TEST(EvaluatorTest, AllEnginesAgreeWhereApplicable) {
  const std::string doc =
      "<a><b><c/></b><b><c/><d/></b></a>";  // a=1 b=2 c=3 b=4 c=5 d=6
  EXPECT_EQ(MustEvaluate("//a//c", doc, EngineKind::kPathM),
            MustEvaluate("//a//c", doc, EngineKind::kTwigM));
  EXPECT_EQ(MustEvaluate("/a/b[d]/c", doc, EngineKind::kBranchM),
            MustEvaluate("/a/b[d]/c", doc, EngineKind::kTwigM));
}

TEST(EvaluatorTest, InvalidQueryFailsAtCreate) {
  VectorResultSink sink;
  auto proc = XPathStreamProcessor::Create("a[", &sink);
  ASSERT_FALSE(proc.ok());
  EXPECT_EQ(proc.status().code(), StatusCode::kParseError);
}

TEST(EvaluatorTest, MalformedXmlFailsAtFeed) {
  VectorResultSink sink;
  auto proc = XPathStreamProcessor::Create("//a", &sink);
  ASSERT_TRUE(proc.ok());
  EXPECT_FALSE(proc.value()->Consume({"<a><b></a>", false}).ok());
}

TEST(EvaluatorTest, ChunkedFeedingMatchesWholeDocument) {
  // Build a moderately sized recursive document.
  std::string doc = "<root>";
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    switch (rng.Below(4)) {
      case 0: doc += "<a><b>text</b></a>"; break;
      case 1: doc += "<a><a><c at=\"1\"/></a></a>"; break;
      case 2: doc += "<b><c/><c/></b>"; break;
      default: doc += "<c>5</c>"; break;
    }
  }
  doc += "</root>";

  const char* kQuery = "//a//c[@at]";
  const std::vector<xml::NodeId> expected =
      MustEvaluate(kQuery, doc, EngineKind::kTwigM);

  for (size_t chunk : {1u, 3u, 7u, 64u, 1000u}) {
    VectorResultSink sink;
    auto proc = XPathStreamProcessor::Create(kQuery, &sink);
    ASSERT_TRUE(proc.ok());
    size_t pos = 0;
    while (pos < doc.size()) {
      const size_t len = std::min(chunk, doc.size() - pos);
      ASSERT_TRUE(
          proc.value()->Consume({std::string_view(doc).substr(pos, len), false}).ok());
      pos += len;
    }
    ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
    std::vector<xml::NodeId> got = sink.TakeIds();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "chunk=" << chunk;
  }
}

TEST(EvaluatorTest, ResetAllowsSecondDocument) {
  VectorResultSink sink;
  auto proc = XPathStreamProcessor::Create("//a/b", &sink);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({"<a><b/></a>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  proc.value()->Reset();
  ASSERT_TRUE(proc.value()->Consume({"<a><b/><b/></a>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(sink.ids().size(), 3u);
}

TEST(EvaluatorTest, ForcedEngineRejectsUnsupportedQuery) {
  VectorResultSink sink;
  EvaluatorOptions options;
  options.engine = EngineKind::kPathM;
  auto proc = XPathStreamProcessor::Create("//a[b]", &sink, options);
  ASSERT_FALSE(proc.ok());
  EXPECT_EQ(proc.status().code(), StatusCode::kNotSupported);
}

TEST(EvaluatorTest, NullSinkRejected) {
  auto proc = XPathStreamProcessor::Create("//a", nullptr);
  ASSERT_FALSE(proc.ok());
  EXPECT_EQ(proc.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvaluatorTest, EngineKindNames) {
  EXPECT_STREQ(EngineKindToString(EngineKind::kAuto), "auto");
  EXPECT_STREQ(EngineKindToString(EngineKind::kPathM), "PathM");
  EXPECT_STREQ(EngineKindToString(EngineKind::kBranchM), "BranchM");
  EXPECT_STREQ(EngineKindToString(EngineKind::kTwigM), "TwigM");
}

TEST(EvaluatorTest, StatsAccessibleAfterRun) {
  VectorResultSink sink;
  auto proc = XPathStreamProcessor::Create("//a//b", &sink);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({"<a><b/><b/></a>", false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(proc.value()->stats().results, 2u);
  EXPECT_EQ(proc.value()->stats().start_events, 3u);
}

}  // namespace
}  // namespace twigm
