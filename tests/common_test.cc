#include "common/mem_stats.h"
#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "gtest/gtest.h"

namespace twigm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad tag");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad tag");
  EXPECT_EQ(s.ToString(), "parse error: bad tag");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "invalid argument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "parse error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotSupported), "not supported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "out of range");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "resource exhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "internal error");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("too big"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    TWIGM_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, WordLengthBounds) {
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const std::string w = rng.Word(2, 6);
    EXPECT_GE(w.size(), 2u);
    EXPECT_LE(w.size(), 6u);
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(RngTest, ReseedReproduces) {
  Rng rng(55);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Reseed(55);
  EXPECT_EQ(rng.Next(), first);
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, JoinRoundTrips) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(StrJoin({}, "/"), "");
  EXPECT_EQ(StrJoin({"one"}, ", "), "one");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x \t\n"), "x");
  EXPECT_EQ(StripAsciiWhitespace("\r\n"), "");
  EXPECT_EQ(StripAsciiWhitespace("a b"), "a b");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(uint64_t{3} * 1024 * 1024), "3.0 MB");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
}

TEST(MemStatsTest, ReadsProcSelfStatus) {
  const ProcessMemory mem = ReadProcessMemory();
  // On Linux both readings are non-zero for a live process.
  EXPECT_GT(mem.rss_bytes, 0u);
  EXPECT_GE(mem.peak_rss_bytes, mem.rss_bytes / 2);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  // Busy-wait a tiny amount.
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += static_cast<uint64_t>(i);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds());
}

}  // namespace
}  // namespace twigm
