// Behavioural tests for the three baselines: the DOM oracle itself, the
// lazy DFA (XMLTK-style), and the explicit-enumeration engine (XSQ-style),
// including the exponential blow-up TwigM is designed to avoid.

#include <memory>
#include <string>

#include "baselines/dom_eval.h"
#include "baselines/lazy_dfa.h"
#include "baselines/naive_enum.h"
#include "core/evaluator.h"
#include "data/adversarial.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "xml/sax_parser.h"

namespace twigm {
namespace {

using baselines::LazyDfaEngine;
using baselines::NaiveEnumEngine;
using baselines::NaiveEnumOptions;
using core::VectorResultSink;
using testing::Ids;

std::vector<xml::NodeId> DomIds(std::string_view query,
                                std::string_view doc,
                                baselines::DomEvalStats* stats = nullptr) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  EXPECT_TRUE(tree.ok());
  Result<std::vector<xml::NodeId>> result =
      baselines::EvaluateOnDom(tree.value(), doc, stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value()
                     : std::vector<xml::NodeId>{};
}

TEST(DomEvalTest, BasicQueries) {
  const std::string doc = "<a><b><c/></b><c/></a>";
  EXPECT_EQ(DomIds("/a/c", doc), Ids({4}));
  EXPECT_EQ(DomIds("//c", doc), Ids({3, 4}));
  EXPECT_EQ(DomIds("//b[c]", doc), Ids({2}));
  EXPECT_EQ(DomIds("//a[b/c]", doc), Ids({1}));
}

TEST(DomEvalTest, ValueAndAttributeTests) {
  const std::string doc = "<a><b id=\"7\">x</b><b>y</b></a>";
  EXPECT_EQ(DomIds("//b[@id]", doc), Ids({2}));
  EXPECT_EQ(DomIds("//b[.=\"y\"]", doc), Ids({3}));
  EXPECT_EQ(DomIds("//a[b=\"x\"]", doc), Ids({1}));
}

TEST(DomEvalTest, StatsReportMemory) {
  baselines::DomEvalStats stats;
  DomIds("//a//b", "<a><b/><b/><c><b/></c></a>", &stats);
  EXPECT_GT(stats.dom_bytes, 0u);
  EXPECT_GT(stats.memo_bytes, 0u);
  EXPECT_GT(stats.subtree_checks, 0u);
}

TEST(DomEvalTest, MemoKeepsRepeatedSubtreesCheap) {
  // Deep chain with // query: memoization must keep checks linear-ish.
  std::string doc;
  const int n = 300;
  for (int i = 0; i < n; ++i) doc += "<a>";
  doc += "<b/>";
  for (int i = 0; i < n; ++i) doc += "</a>";
  baselines::DomEvalStats stats;
  const std::vector<xml::NodeId> ids = DomIds("//a[//b]", doc, &stats);
  EXPECT_EQ(ids.size(), static_cast<size_t>(n));
  EXPECT_LE(stats.subtree_checks, static_cast<uint64_t>(2 * n + 10));
}

TEST(LazyDfaTest, MatchesSimplePaths) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a//b");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  auto engine = LazyDfaEngine::Create(tree.value(), &sink);
  ASSERT_TRUE(engine.ok());
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  ASSERT_TRUE(parser.ParseAll("<a><x><b/></x><b/></a>").ok());
  EXPECT_EQ(sink.ids(), (std::vector<xml::NodeId>{3, 4}));
  EXPECT_GT(engine.value()->stats().dfa_states, 0u);
  EXPECT_GT(engine.value()->stats().dfa_transitions, 0u);
  EXPECT_EQ(engine.value()->stats().results, 2u);
}

TEST(LazyDfaTest, RejectsPredicates) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a[b]");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  auto engine = LazyDfaEngine::Create(tree.value(), &sink);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotSupported);
}

TEST(LazyDfaTest, DfaIsBuiltLazily) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a/b/c");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  auto engine = LazyDfaEngine::Create(tree.value(), &sink);
  ASSERT_TRUE(engine.ok());
  const uint64_t initial_states = engine.value()->stats().dfa_states;
  EXPECT_LE(initial_states, 1u);  // only the start state exists up front
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  ASSERT_TRUE(parser.ParseAll("<a><b><c/></b></a>").ok());
  EXPECT_GT(engine.value()->stats().dfa_states, initial_states);
}

TEST(LazyDfaTest, TransitionCacheIsReused) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a/b");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  auto engine = LazyDfaEngine::Create(tree.value(), &sink);
  ASSERT_TRUE(engine.ok());
  // Many repetitions of the same structure: transitions computed once.
  std::string doc = "<a>";
  for (int i = 0; i < 100; ++i) doc += "<b/>";
  doc += "</a>";
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  ASSERT_TRUE(parser.ParseAll(doc).ok());
  EXPECT_EQ(engine.value()->stats().results, 100u);
  EXPECT_LE(engine.value()->stats().dfa_transitions, 6u);
  EXPECT_GT(engine.value()->ApproximateMemoryBytes(), 0u);
}

TEST(LazyDfaTest, CollapsedStarsAndMixedAxes) {
  const std::string doc =
      "<a><x><b/></x><y><z><b/></z></y></a>";  // a=1 x=2 b=3 y=4 z=5 b=6
  for (const auto& [query, expected] :
       std::vector<std::pair<std::string, std::vector<xml::NodeId>>>{
           {"//a/*/b", {3}},
           {"//a/*/*/b", {6}},
           {"//a/*//b", {3, 6}},
           {"//*", {1, 2, 3, 4, 5, 6}},
       }) {
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
    ASSERT_TRUE(tree.ok());
    VectorResultSink sink;
    auto engine = LazyDfaEngine::Create(tree.value(), &sink);
    ASSERT_TRUE(engine.ok()) << query;
    xml::EventDriver driver(engine.value().get());
    xml::SaxParser parser(&driver);
    ASSERT_TRUE(parser.ParseAll(doc).ok());
    std::vector<xml::NodeId> got = sink.TakeIds();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << query;
  }
}

TEST(LazyDfaTest, ResetKeepsDfaCache) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a/b");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  auto engine = LazyDfaEngine::Create(tree.value(), &sink);
  ASSERT_TRUE(engine.ok());
  {
    xml::EventDriver driver(engine.value().get());
    xml::SaxParser parser(&driver);
    ASSERT_TRUE(parser.ParseAll("<a><b/></a>").ok());
  }
  const uint64_t states = engine.value()->stats().dfa_states;
  engine.value()->Reset();
  EXPECT_EQ(engine.value()->stats().dfa_states, states);
  EXPECT_EQ(engine.value()->stats().results, 0u);
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  ASSERT_TRUE(parser.ParseAll("<a><b/></a>").ok());
  EXPECT_EQ(engine.value()->stats().results, 1u);
}

struct NaiveRun {
  std::vector<xml::NodeId> ids;
  baselines::NaiveEnumStats stats;
  Status status;
};

NaiveRun RunNaive(std::string_view query, std::string_view doc,
                  NaiveEnumOptions options = NaiveEnumOptions()) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  EXPECT_TRUE(tree.ok());
  VectorResultSink sink;
  auto engine = NaiveEnumEngine::Create(tree.value(), &sink, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  EXPECT_TRUE(parser.ParseAll(doc).ok());
  NaiveRun run;
  run.ids = sink.TakeIds();
  std::sort(run.ids.begin(), run.ids.end());
  run.stats = engine.value()->stats();
  run.status = engine.value()->status();
  return run;
}

TEST(NaiveEnumTest, BasicCorrectness) {
  const std::string doc = "<a><b><c/></b><d/></a>";
  EXPECT_EQ(RunNaive("//a[d]/b/c", doc).ids, Ids({3}));
  EXPECT_EQ(RunNaive("//a[x]/b/c", doc).ids, Ids({}));
  EXPECT_EQ(RunNaive("//b/c", doc).ids, Ids({3}));
}

TEST(NaiveEnumTest, RejectsElementValueTests) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a[b=\"x\"]");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  auto engine = NaiveEnumEngine::Create(tree.value(), &sink);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotSupported);
}

TEST(NaiveEnumTest, AttributeTestsSupported) {
  const std::string doc = "<a><b id=\"1\"><c/></b><b><c/></b></a>";
  EXPECT_EQ(RunNaive("//b[@id]/c", doc).ids, Ids({3}));
}

TEST(NaiveEnumTest, MatchCountGrowsQuadraticallyOnFigure1) {
  // //a//b//c on the Fig. 1 family: the engine must materialize ~n² partial
  // matches where TwigM stores ~2n stack entries — the paper's core claim.
  auto peak_for = [&](int n) {
    data::AdversarialOptions options;
    options.n = n;
    const NaiveRun run =
        RunNaive("//a//b//c", data::GenerateAdversarial(options));
    EXPECT_TRUE(run.status.ok());
    EXPECT_EQ(run.ids.size(), 1u);
    return run.stats.peak_live_matches;
  };
  const uint64_t p8 = peak_for(8);
  const uint64_t p16 = peak_for(16);
  const uint64_t p32 = peak_for(32);
  // Quadratic growth: doubling n should roughly 4x the live matches.
  EXPECT_GT(p16, 3 * p8);
  EXPECT_GT(p32, 3 * p16);
  EXPECT_GE(p32, static_cast<uint64_t>(32) * 32 / 2);
}

TEST(NaiveEnumTest, CapAbortsGracefully) {
  NaiveEnumOptions options;
  options.max_live_matches = 100;
  data::AdversarialOptions adv;
  adv.n = 64;
  const NaiveRun run =
      RunNaive("//a//b//c", data::GenerateAdversarial(adv), options);
  EXPECT_EQ(run.status.code(), StatusCode::kResourceExhausted);
}

TEST(NaiveEnumTest, GarbageCollectsDeadMatches) {
  // Two sibling subtrees: matches rooted in the first must be collected
  // when it closes.
  std::string doc = "<r>";
  for (int i = 0; i < 50; ++i) doc += "<a><b/></a>";
  doc += "</r>";
  const NaiveRun run = RunNaive("//a[b]/b", doc);
  EXPECT_TRUE(run.status.ok());
  EXPECT_EQ(run.ids.size(), 50u);
  // Live matches never accumulate across closed siblings.
  EXPECT_LE(run.stats.peak_live_matches, 8u);
}

TEST(NaiveEnumTest, ResetClearsState) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse("//a/b");
  ASSERT_TRUE(tree.ok());
  VectorResultSink sink;
  auto engine = NaiveEnumEngine::Create(tree.value(), &sink);
  ASSERT_TRUE(engine.ok());
  {
    xml::EventDriver driver(engine.value().get());
    xml::SaxParser parser(&driver);
    ASSERT_TRUE(parser.ParseAll("<a><b/></a>").ok());
  }
  engine.value()->Reset();
  EXPECT_EQ(engine.value()->stats().results, 0u);
  xml::EventDriver driver(engine.value().get());
  xml::SaxParser parser(&driver);
  ASSERT_TRUE(parser.ParseAll("<a><b/></a>").ok());
  EXPECT_EQ(engine.value()->stats().results, 1u);
  EXPECT_EQ(sink.ids().size(), 2u);
}

}  // namespace
}  // namespace twigm
