// Differential test for the interned-tag dispatch path: every engine must
// produce the identical match set — (query, node id, proof byte offset)
// triples — whether events carry SymbolIds (postings-vector dispatch) or
// kNoSymbol (legacy byte-comparing dispatch, SaxParserOptions::intern_tags
// = false). Documents are randomized recursive instances generated from a
// DTD, so the same tag appears at many levels and the dedup/propagation
// machinery is exercised, not just simple matches.

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/evaluator.h"
#include "core/multi_query.h"
#include "core/result_sink.h"
#include "dtd/dtd_generator.h"
#include "dtd/dtd_parser.h"
#include "filter/filter_engine.h"
#include "gtest/gtest.h"

namespace twigm {
namespace {

constexpr int kDocuments = 100;

// A recursive document grammar: <section> nests under itself, so generated
// instances are recursive to the generator's level limit.
const char kDtd[] = R"(
  <!ELEMENT book (title, author*, section*)>
  <!ELEMENT section (title?, (section | p | figure)*)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT p (#PCDATA)>
  <!ELEMENT figure EMPTY>
  <!ATTLIST figure id CDATA #REQUIRED>
  <!ATTLIST section difficulty CDATA #IMPLIED>
)";

std::vector<std::string> GenerateDocuments() {
  Result<dtd::Dtd> parsed = dtd::ParseDtd(kDtd);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::vector<std::string> docs;
  docs.reserve(kDocuments);
  for (int i = 0; i < kDocuments; ++i) {
    dtd::GeneratorOptions options;
    options.seed = 1000 + static_cast<uint64_t>(i);
    options.number_levels = 10;
    options.max_repeats = 3;
    Result<std::string> doc = dtd::GenerateDocument(parsed.value(), "book",
                                                    options);
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    docs.push_back(std::move(doc.value()));
  }
  return docs;
}

// (query index, node id, proof byte offset) — sorted before comparison
// because dispatch order within one event may differ between the symbol
// and legacy paths (label vs wildcard interleaving) without changing the
// match set.
using Hit = std::tuple<size_t, xml::NodeId, uint64_t>;

class CollectingMultiSink : public core::MultiQueryResultSink {
 public:
  void OnResult(size_t query_index, const core::MatchInfo& match) override {
    hits.push_back({query_index, match.id, match.byte_offset});
  }
  std::vector<Hit> hits;
};

class CollectingObserver : public core::MatchObserver {
 public:
  void OnResult(const core::MatchInfo& match) override {
    hits.push_back({0, match.id, match.byte_offset});
  }
  std::vector<Hit> hits;
};

std::vector<Hit> Sorted(std::vector<Hit> hits) {
  std::sort(hits.begin(), hits.end());
  return hits;
}

const std::vector<std::string>& TwigQueries() {
  static const std::vector<std::string>* queries = new std::vector<std::string>{
      "//section[title]//figure",
      "/book//section[p][figure]",
      "//section//section/title",
      "//section[@difficulty]",
      "//*[figure]/p",
      "/book/section//section[section]",
  };
  return *queries;
}

std::vector<Hit> RunSingleQuery(const std::string& query,
                                const std::string& doc, bool intern) {
  CollectingObserver observer;
  core::EvaluatorOptions options;
  options.engine = core::EngineKind::kTwigM;
  options.sax.intern_tags = intern;
  Result<std::unique_ptr<core::XPathStreamProcessor>> proc =
      core::XPathStreamProcessor::Create(query, &observer, options);
  EXPECT_TRUE(proc.ok()) << query << ": " << proc.status().ToString();
  Status s = proc.value()->Consume({doc, false});
  if (s.ok()) s = proc.value()->Consume({std::string_view(), true});
  EXPECT_TRUE(s.ok()) << s.ToString();
  return Sorted(std::move(observer.hits));
}

TEST(HotpathDifferentialTest, TwigMachineMatchesLegacyDispatch) {
  const std::vector<std::string> docs = GenerateDocuments();
  for (size_t d = 0; d < docs.size(); ++d) {
    for (const std::string& query : TwigQueries()) {
      const std::vector<Hit> interned = RunSingleQuery(query, docs[d], true);
      const std::vector<Hit> legacy = RunSingleQuery(query, docs[d], false);
      ASSERT_EQ(interned, legacy) << "doc seed " << (1000 + d) << " query "
                                  << query;
    }
  }
}

std::vector<Hit> RunMultiQuery(const std::vector<std::string>& queries,
                               const std::string& doc, bool intern) {
  CollectingMultiSink sink;
  core::EvaluatorOptions options;
  options.sax.intern_tags = intern;
  Result<std::unique_ptr<core::MultiQueryProcessor>> proc =
      core::MultiQueryProcessor::Create(queries, &sink, options);
  EXPECT_TRUE(proc.ok()) << proc.status().ToString();
  Status s = proc.value()->Consume({doc, false});
  if (s.ok()) s = proc.value()->Consume({std::string_view(), true});
  EXPECT_TRUE(s.ok()) << s.ToString();
  return Sorted(std::move(sink.hits));
}

TEST(HotpathDifferentialTest, MultiQueryProcessorMatchesLegacyDispatch) {
  const std::vector<std::string> docs = GenerateDocuments();
  for (size_t d = 0; d < docs.size(); ++d) {
    const std::vector<Hit> interned = RunMultiQuery(TwigQueries(), docs[d],
                                                    true);
    const std::vector<Hit> legacy = RunMultiQuery(TwigQueries(), docs[d],
                                                  false);
    ASSERT_EQ(interned, legacy) << "doc seed " << (1000 + d);
  }
}

std::vector<Hit> RunFilter(const std::vector<std::string>& queries,
                           const std::string& doc, bool intern) {
  CollectingMultiSink sink;
  core::EvaluatorOptions options;
  options.sax.intern_tags = intern;
  Result<std::unique_ptr<filter::FilterEngine>> engine =
      filter::FilterEngine::Create(queries, &sink, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  Status s = engine.value()->Consume({doc, false});
  if (s.ok()) s = engine.value()->Consume({std::string_view(), true});
  EXPECT_TRUE(s.ok()) << s.ToString();
  return Sorted(std::move(sink.hits));
}

TEST(HotpathDifferentialTest, FilterEngineMatchesLegacyDispatch) {
  // Shared prefixes on purpose: the trie collapses these, so the symbol
  // dispatch at the trie root and at active trie nodes both get exercised.
  const std::vector<std::string> queries = {
      "//section/title",
      "//section/figure",
      "//section//figure",
      "/book/section",
      "/book//p",
      "//*/figure",
      "//section[p]/title",
      "//section[@difficulty]//figure",
  };
  const std::vector<std::string> docs = GenerateDocuments();
  for (size_t d = 0; d < docs.size(); ++d) {
    const std::vector<Hit> interned = RunFilter(queries, docs[d], true);
    const std::vector<Hit> legacy = RunFilter(queries, docs[d], false);
    ASSERT_EQ(interned, legacy) << "doc seed " << (1000 + d);
  }
}

// Reset + re-stream with interning on must also agree with a fresh legacy
// run: pooled state from the previous document must not leak into results.
TEST(HotpathDifferentialTest, ResetReuseMatchesLegacyDispatch) {
  const std::vector<std::string> docs = GenerateDocuments();
  CollectingMultiSink sink;
  core::EvaluatorOptions options;
  Result<std::unique_ptr<core::MultiQueryProcessor>> proc =
      core::MultiQueryProcessor::Create(TwigQueries(), &sink, options);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  for (size_t d = 0; d < 20 && d < docs.size(); ++d) {
    sink.hits.clear();
    proc.value()->Reset();
    Status s = proc.value()->Consume({docs[d], false});
    if (s.ok()) s = proc.value()->Consume({std::string_view(), true});
    ASSERT_TRUE(s.ok()) << s.ToString();
    const std::vector<Hit> reused = Sorted(sink.hits);
    const std::vector<Hit> fresh = RunMultiQuery(TwigQueries(), docs[d],
                                                 false);
    ASSERT_EQ(reused, fresh) << "doc seed " << (1000 + d);
  }
}

}  // namespace
}  // namespace twigm
