#include <string>

#include "gtest/gtest.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"
#include "xml/xml_writer.h"

namespace twigm::xml {
namespace {

TEST(XmlWriterTest, SimpleDocument) {
  XmlWriter w(/*with_declaration=*/false);
  w.Open("a").Open("b").Text("hi").Close().Close();
  EXPECT_EQ(std::move(w).TakeString(), "<a><b>hi</b></a>");
}

TEST(XmlWriterTest, SelfClosesEmptyElements) {
  XmlWriter w(false);
  w.Open("a").Open("b").Close().Close();
  EXPECT_EQ(std::move(w).TakeString(), "<a><b/></a>");
}

TEST(XmlWriterTest, AttributesAreEscaped) {
  XmlWriter w(false);
  w.Open("a").Attr("x", "<\"&>").Close();
  EXPECT_EQ(std::move(w).TakeString(),
            "<a x=\"&lt;&quot;&amp;&gt;\"/>");
}

TEST(XmlWriterTest, TextIsEscaped) {
  XmlWriter w(false);
  w.Open("a").Text("1 < 2 & 3 > 2").Close();
  EXPECT_EQ(std::move(w).TakeString(), "<a>1 &lt; 2 &amp; 3 &gt; 2</a>");
}

TEST(XmlWriterTest, DeclarationEmittedByDefault) {
  XmlWriter w;
  w.Open("a").Close();
  const std::string doc = std::move(w).TakeString();
  EXPECT_EQ(doc.find("<?xml"), 0u);
}

TEST(XmlWriterTest, TakeStringClosesOpenElements) {
  XmlWriter w(false);
  w.Open("a").Open("b").Text("x");
  EXPECT_EQ(std::move(w).TakeString(), "<a><b>x</b></a>");
}

TEST(XmlWriterTest, DepthTracksOpens) {
  XmlWriter w(false);
  EXPECT_EQ(w.depth(), 0u);
  w.Open("a");
  w.Open("b");
  EXPECT_EQ(w.depth(), 2u);
  w.Close();
  EXPECT_EQ(w.depth(), 1u);
}

TEST(XmlWriterTest, AttrAfterContentIsIgnored) {
  XmlWriter w(false);
  w.Open("a").Text("t").Attr("x", "1").Close();
  EXPECT_EQ(std::move(w).TakeString(), "<a>t</a>");
}

TEST(XmlWriterTest, WriterOutputReparses) {
  XmlWriter w;
  w.Open("root").Attr("k", "a&b");
  w.Open("child").Text("x < y").Close();
  w.Close();
  const std::string doc = std::move(w).TakeString();
  Result<DomDocument> parsed = DomDocument::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().root()->tag, "root");
  EXPECT_EQ(*parsed.value().root()->FindAttribute("k"), "a&b");
  EXPECT_EQ(parsed.value().root()->children[0]->text, "x < y");
}

TEST(DomTest, BuildsTreeWithIdsAndLevels) {
  Result<DomDocument> doc = DomDocument::Parse("<a><b><c/></b><b/></a>");
  ASSERT_TRUE(doc.ok());
  const DomNode* root = doc.value().root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->tag, "a");
  EXPECT_EQ(root->id, 1u);
  EXPECT_EQ(root->level, 1);
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->tag, "b");
  EXPECT_EQ(root->children[0]->id, 2u);
  EXPECT_EQ(root->children[0]->children[0]->id, 3u);
  EXPECT_EQ(root->children[0]->children[0]->level, 3);
  EXPECT_EQ(root->children[1]->id, 4u);
  EXPECT_EQ(doc.value().size(), 4u);
  EXPECT_EQ(doc.value().depth(), 3);
}

TEST(DomTest, ParentPointers) {
  Result<DomDocument> doc = DomDocument::Parse("<a><b/></a>");
  ASSERT_TRUE(doc.ok());
  const DomNode* root = doc.value().root();
  EXPECT_EQ(root->parent, nullptr);
  EXPECT_EQ(root->children[0]->parent, root);
}

TEST(DomTest, DirectTextOnly) {
  Result<DomDocument> doc =
      DomDocument::Parse("<a>x<b>inner</b>y</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root()->text, "xy");
  EXPECT_EQ(doc.value().root()->children[0]->text, "inner");
}

TEST(DomTest, AttributesAccessible) {
  Result<DomDocument> doc = DomDocument::Parse("<a x=\"1\" y=\"2\"/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc.value().root()->FindAttribute("x"), "1");
  EXPECT_EQ(*doc.value().root()->FindAttribute("y"), "2");
  EXPECT_EQ(doc.value().root()->FindAttribute("z"), nullptr);
}

TEST(DomTest, ParseErrorPropagates) {
  Result<DomDocument> doc = DomDocument::Parse("<a><b></a>");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kParseError);
}

TEST(DomTest, MemoryEstimatePositive) {
  Result<DomDocument> doc =
      DomDocument::Parse("<a><b attr=\"value\">text</b></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_GT(doc.value().ApproximateMemoryBytes(), sizeof(DomNode) * 2);
}

TEST(EventDriverTest, AssignsLevelsAndPreOrderIds) {
  struct Recorder : StreamEventSink {
    std::string log;
    void StartElement(const TagToken& tag, int level, NodeId id,
                      const std::vector<Attribute>&) override {
      log += "+" + std::string(tag.text) + "/" + std::to_string(level) + "#" +
             std::to_string(id) + " ";
    }
    void EndElement(const TagToken& tag, int level) override {
      log += "-" + std::string(tag.text) + "/" + std::to_string(level) + " ";
    }
    void Text(std::string_view text, int level) override {
      log += "t" + std::to_string(level) + "(" + std::string(text) + ") ";
    }
    void EndDocument() override { log += "eof"; }
  };
  Recorder recorder;
  EventDriver driver(&recorder);
  SaxParser parser(&driver);
  ASSERT_TRUE(parser.ParseAll("<a><b>x</b><c><d/></c></a>").ok());
  EXPECT_EQ(recorder.log,
            "+a/1#1 +b/2#2 t2(x) -b/2 +c/2#3 +d/3#4 -d/3 -c/2 -a/1 eof");
  EXPECT_EQ(driver.element_count(), 4u);
}

}  // namespace
}  // namespace twigm::xml
