#include "xml/sax_parser.h"

#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "xml/sax_event.h"

namespace twigm::xml {
namespace {

// Records every event as a compact trace string for easy assertions.
class TraceHandler : public SaxHandler {
 public:
  void OnStartDocument() override { trace_ += "D+ "; }
  void OnEndDocument() override { trace_ += "D- "; }
  void OnStartElement(const TagToken& tag,
                      const std::vector<Attribute>& attrs) override {
    trace_ += "<" + std::string(tag.text);
    for (const Attribute& a : attrs) {
      trace_ += " " + std::string(a.name) + "='" + std::string(a.value) + "'";
    }
    trace_ += "> ";
  }
  void OnEndElement(const TagToken& tag) override {
    trace_ += "</" + std::string(tag.text) + "> ";
  }
  void OnCharacters(std::string_view text) override {
    trace_ += "T(" + std::string(text) + ") ";
  }
  void OnComment(std::string_view text) override {
    trace_ += "C(" + std::string(text) + ") ";
  }
  void OnProcessingInstruction(std::string_view target,
                               std::string_view data) override {
    trace_ += "PI(" + std::string(target) + "," + std::string(data) + ") ";
  }

  const std::string& trace() const { return trace_; }

 private:
  std::string trace_;
};

std::string ParseTrace(std::string_view doc, Status* status = nullptr) {
  TraceHandler handler;
  SaxParser parser(&handler);
  Status s = parser.ParseAll(doc);
  if (status != nullptr) *status = s;
  return handler.trace();
}

Status ParseStatus(std::string_view doc) {
  Status s;
  ParseTrace(doc, &s);
  return s;
}

TEST(SaxParserTest, MinimalDocument) {
  Status s;
  EXPECT_EQ(ParseTrace("<a/>", &s), "D+ <a> </a> D- ");
  EXPECT_TRUE(s.ok());
}

TEST(SaxParserTest, NestedElements) {
  Status s;
  EXPECT_EQ(ParseTrace("<a><b><c/></b></a>", &s),
            "D+ <a> <b> <c> </c> </b> </a> D- ");
  EXPECT_TRUE(s.ok());
}

TEST(SaxParserTest, CharacterData) {
  EXPECT_EQ(ParseTrace("<a>hello</a>"), "D+ <a> T(hello) </a> D- ");
}

TEST(SaxParserTest, MixedContent) {
  EXPECT_EQ(ParseTrace("<a>x<b/>y</a>"),
            "D+ <a> T(x) <b> </b> T(y) </a> D- ");
}

TEST(SaxParserTest, Attributes) {
  EXPECT_EQ(ParseTrace("<a x=\"1\" y='two'/>"),
            "D+ <a x='1' y='two'> </a> D- ");
}

TEST(SaxParserTest, AttributeWithAngleInValueViaEntity) {
  EXPECT_EQ(ParseTrace("<a x=\"&lt;&gt;&amp;&quot;&apos;\"/>"),
            "D+ <a x='<>&\"''> </a> D- ");
}

TEST(SaxParserTest, AttributeValueMayContainRawGt) {
  // '>' is legal inside a quoted attribute value.
  EXPECT_EQ(ParseTrace("<a x=\"1>2\"/>"), "D+ <a x='1>2'> </a> D- ");
}

TEST(SaxParserTest, PredefinedEntitiesInText) {
  EXPECT_EQ(ParseTrace("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;</a>"),
            "D+ <a> T(<tag> & \"q\" ') </a> D- ");
}

TEST(SaxParserTest, DecimalAndHexCharRefs) {
  EXPECT_EQ(ParseTrace("<a>&#65;&#x42;</a>"), "D+ <a> T(AB) </a> D- ");
}

TEST(SaxParserTest, MultibyteCharRef) {
  // U+00E9 (é) is C3 A9 in UTF-8.
  EXPECT_EQ(ParseTrace("<a>&#233;</a>"), "D+ <a> T(\xC3\xA9) </a> D- ");
}

TEST(SaxParserTest, CdataSection) {
  EXPECT_EQ(ParseTrace("<a><![CDATA[<not> & parsed]]></a>"),
            "D+ <a> T(<not> & parsed) </a> D- ");
}

TEST(SaxParserTest, Comments) {
  EXPECT_EQ(ParseTrace("<!-- head --><a><!-- in --></a>"),
            "D+ C( head ) <a> C( in ) </a> D- ");
}

TEST(SaxParserTest, ProcessingInstruction) {
  EXPECT_EQ(ParseTrace("<a><?target some data?></a>"),
            "D+ <a> PI(target,some data) </a> D- ");
}

TEST(SaxParserTest, XmlDeclarationIsSilent) {
  EXPECT_EQ(ParseTrace("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>"),
            "D+ <a> </a> D- ");
}

TEST(SaxParserTest, DoctypeIsSkipped) {
  EXPECT_EQ(ParseTrace("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>"),
            "D+ <a> </a> D- ");
}

TEST(SaxParserTest, WhitespaceAroundRoot) {
  EXPECT_EQ(ParseTrace("\n  <a/>  \n"), "D+ <a> </a> D- ");
}

TEST(SaxParserTest, SelfClosingWithAttributes) {
  EXPECT_EQ(ParseTrace("<a><b k=\"v\"/></a>"),
            "D+ <a> <b k='v'> </b> </a> D- ");
}

TEST(SaxParserTest, EndTagWithWhitespace) {
  EXPECT_EQ(ParseTrace("<a></a >"), "D+ <a> </a> D- ");
}

// --- error cases ---

TEST(SaxParserErrorTest, MismatchedTags) {
  const Status s = ParseStatus("<a><b></a></b>");
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("mismatched end tag"), std::string::npos);
}

TEST(SaxParserErrorTest, UnclosedElement) {
  EXPECT_EQ(ParseStatus("<a><b></b>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, NoRootElement) {
  EXPECT_EQ(ParseStatus("   ").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseStatus("<!-- only a comment -->").code(),
            StatusCode::kParseError);
}

TEST(SaxParserErrorTest, MultipleRoots) {
  EXPECT_EQ(ParseStatus("<a/><b/>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, TextOutsideRoot) {
  EXPECT_EQ(ParseStatus("<a/>junk").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseStatus("junk<a/>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, DuplicateAttribute) {
  EXPECT_EQ(ParseStatus("<a x=\"1\" x=\"2\"/>").code(),
            StatusCode::kParseError);
}

TEST(SaxParserErrorTest, UnquotedAttribute) {
  EXPECT_EQ(ParseStatus("<a x=1/>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, MissingEqualsInAttribute) {
  EXPECT_EQ(ParseStatus("<a x \"1\"/>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, InvalidElementName) {
  EXPECT_EQ(ParseStatus("<1a/>").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseStatus("<-a/>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, UnknownEntity) {
  EXPECT_EQ(ParseStatus("<a>&nope;</a>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, UnterminatedEntity) {
  EXPECT_EQ(ParseStatus("<a>&amp</a>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, InvalidCharRef) {
  EXPECT_EQ(ParseStatus("<a>&#xZZ;</a>").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseStatus("<a>&#1114112;</a>").code(),
            StatusCode::kParseError);  // > U+10FFFF
  EXPECT_EQ(ParseStatus("<a>&#xD800;</a>").code(),
            StatusCode::kParseError);  // surrogate
}

TEST(SaxParserErrorTest, DoubleHyphenInComment) {
  EXPECT_EQ(ParseStatus("<a><!-- x -- y --></a>").code(),
            StatusCode::kParseError);
}

TEST(SaxParserErrorTest, EndTagWithoutOpen) {
  EXPECT_EQ(ParseStatus("</a>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, RawLtInAttributeValue) {
  EXPECT_EQ(ParseStatus("<a x=\"<\"/>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, FeedAfterFinishFails) {
  TraceHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.ParseAll("<a/>").ok());
  EXPECT_FALSE(parser.Consume({"<b/>", false}).ok());
}

TEST(SaxParserErrorTest, ErrorIsSticky) {
  TraceHandler handler;
  SaxParser parser(&handler);
  ASSERT_FALSE(parser.Consume({"<a><b></a>", false}).ok());
  EXPECT_FALSE(parser.Consume({"</b></a>", false}).ok());
}

TEST(SaxParserErrorTest, MaxDepthEnforced) {
  SaxParserOptions options;
  options.max_depth = 4;
  TraceHandler handler;
  SaxParser parser(&handler, options);
  const Status s = parser.ParseAll("<a><a><a><a><a></a></a></a></a></a>");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(SaxParserErrorTest, ReportsLineAndColumn) {
  const Status s = ParseStatus("<a>\n<b>\n</c>\n</a>");
  EXPECT_NE(s.message().find("line 3"), std::string::npos);
}

// --- incremental feeding ---

TEST(SaxParserChunkTest, ByteAtATimeMatchesWholeParse) {
  const std::string doc =
      "<?xml version=\"1.0\"?><root a=\"1\"><!-- c --><x>text &amp; "
      "more</x><![CDATA[raw]]><y k='v'/></root>";
  TraceHandler whole;
  {
    SaxParser parser(&whole);
    ASSERT_TRUE(parser.ParseAll(doc).ok());
  }
  TraceHandler chunked;
  {
    SaxParser parser(&chunked);
    for (char c : doc) {
      ASSERT_TRUE(parser.Consume({std::string_view(&c, 1), false}).ok());
    }
    ASSERT_TRUE(parser.Consume({std::string_view(), true}).ok());
  }
  EXPECT_EQ(whole.trace(), chunked.trace());
}

TEST(SaxParserChunkTest, RandomChunkBoundaries) {
  const std::string doc =
      "<doc><a x=\"&#65;\">alpha</a><b><![CDATA[<&>]]></b><?pi data?>"
      "<!--note--><c/><d>tail &lt;</d></doc>";
  TraceHandler whole;
  {
    SaxParser parser(&whole);
    ASSERT_TRUE(parser.ParseAll(doc).ok());
  }
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    TraceHandler chunked;
    SaxParser parser(&chunked);
    size_t pos = 0;
    while (pos < doc.size()) {
      const size_t len =
          std::min<size_t>(1 + rng.Below(7), doc.size() - pos);
      ASSERT_TRUE(parser.Consume({std::string_view(doc).substr(pos, len), false}).ok());
      pos += len;
    }
    ASSERT_TRUE(parser.Consume({std::string_view(), true}).ok());
    EXPECT_EQ(whole.trace(), chunked.trace()) << "trial " << trial;
  }
}

TEST(SaxParserChunkTest, TruncatedDocumentFailsAtFinish) {
  TraceHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Consume({"<a><b>unfinished", false}).ok());
  EXPECT_FALSE(parser.Consume({std::string_view(), true}).ok());
}

TEST(SaxParserTest, IsValidXmlName) {
  EXPECT_TRUE(IsValidXmlName("a"));
  EXPECT_TRUE(IsValidXmlName("a-b.c_d"));
  EXPECT_TRUE(IsValidXmlName("_x"));
  EXPECT_TRUE(IsValidXmlName("ns:tag"));
  EXPECT_FALSE(IsValidXmlName(""));
  EXPECT_FALSE(IsValidXmlName("1a"));
  EXPECT_FALSE(IsValidXmlName("-a"));
  EXPECT_FALSE(IsValidXmlName("a b"));
}

TEST(SaxParserTest, BytesConsumedAdvances) {
  TraceHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.ParseAll("<a>xy</a>").ok());
  EXPECT_EQ(parser.bytes_consumed(), 9u);
}

TEST(SaxParserTest, LargeDocumentBufferCompaction) {
  // Exercise the internal buffer-compaction path with a long document fed
  // in pieces.
  std::string doc = "<r>";
  for (int i = 0; i < 20000; ++i) {
    doc += "<item id=\"" + std::to_string(i) + "\">value</item>";
  }
  doc += "</r>";
  TraceHandler handler;
  SaxParser parser(&handler);
  size_t pos = 0;
  while (pos < doc.size()) {
    const size_t len = std::min<size_t>(4096, doc.size() - pos);
    ASSERT_TRUE(parser.Consume({std::string_view(doc).substr(pos, len), false}).ok());
    pos += len;
  }
  ASSERT_TRUE(parser.Consume({std::string_view(), true}).ok());
  EXPECT_EQ(parser.bytes_consumed(), doc.size());
}

TEST(SaxParserTest, MaxBufferBytesStopsUnterminatedConstruct) {
  // A CDATA section that never closes would otherwise buffer forever.
  SaxParserOptions options;
  options.max_buffer_bytes = 1024;
  TraceHandler handler;
  SaxParser parser(&handler, options);
  ASSERT_TRUE(parser.Consume({"<r><![CDATA[", false}).ok());
  Status error;
  for (int i = 0; i < 64 && error.ok(); ++i) {
    error = parser.Consume({std::string(128, 'x'), false});
  }
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.code(), StatusCode::kResourceExhausted);
  // Error carries a position like the other well-formedness failures.
  EXPECT_NE(error.ToString().find("line"), std::string::npos);
  // The error is sticky.
  EXPECT_FALSE(parser.Consume({"]]></r>", false}).ok());
}

TEST(SaxParserTest, MaxBufferBytesAllowsCompletedConstructs) {
  // Completed constructs drain the buffer, so a document much larger than
  // the cap parses fine as long as no single construct exceeds it.
  SaxParserOptions options;
  options.max_buffer_bytes = 256;
  TraceHandler handler;
  SaxParser parser(&handler, options);
  ASSERT_TRUE(parser.Consume({"<r>", false}).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(parser.Consume({"<item>abcdefgh</item>", false}).ok()) << i;
  }
  ASSERT_TRUE(parser.Consume({"</r>", false}).ok());
  ASSERT_TRUE(parser.Consume({std::string_view(), true}).ok());
}

TEST(SaxParserTest, MaxBufferBytesZeroDisablesLimit) {
  SaxParserOptions options;
  options.max_buffer_bytes = 0;
  TraceHandler handler;
  SaxParser parser(&handler, options);
  ASSERT_TRUE(parser.Consume({"<r><![CDATA[", false}).ok());
  ASSERT_TRUE(parser.Consume({std::string(1 << 20, 'x'), false}).ok());
  ASSERT_TRUE(parser.Consume({"]]></r>", false}).ok());
  EXPECT_TRUE(parser.Consume({std::string_view(), true}).ok());
}

}  // namespace
}  // namespace twigm::xml
