// Tests for the sharded subscription service (src/serve/): the SPSC ring,
// the subscription registry's partitioning/epoch rules, and the server
// end-to-end against a single-threaded FilterEngine oracle — including
// callback delivery, churn across document boundaries, concurrent streams,
// and the exported metrics surface.

#include "serve/server.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/multi_query.h"
#include "filter/filter_engine.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serve/spsc_ring.h"
#include "serve/subscription_registry.h"
#include "xml/tag_interner.h"

namespace twigm {
namespace {

using serve::EventRecord;
using serve::Notification;
using serve::SpscRing;
using serve::SubscriptionId;
using serve::SubscriptionRegistry;
using serve::SubscriptionServer;

// ---------------------------------------------------------------------------
// SpscRing

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, FifoOrderAndFullEmpty) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.Front(), nullptr);
  for (int i = 0; i < 4; ++i) {
    int* slot = ring.BeginPush();
    ASSERT_NE(slot, nullptr);
    *slot = i;
    ring.CommitPush();
  }
  EXPECT_EQ(ring.BeginPush(), nullptr);  // full
  EXPECT_EQ(ring.SizeApprox(), 4u);
  for (int i = 0; i < 4; ++i) {
    int* front = ring.Front();
    ASSERT_NE(front, nullptr);
    EXPECT_EQ(*front, i);
    ring.Pop();
  }
  EXPECT_EQ(ring.Front(), nullptr);  // empty again
  EXPECT_NE(ring.BeginPush(), nullptr);
}

TEST(SpscRingTest, SlotsAreReusedInPlace) {
  SpscRing<std::string> ring(2);
  // First lap: grow both slots' capacity.
  std::string* slot = ring.BeginPush();
  slot->assign(1024, 'x');
  ring.CommitPush();
  ring.Front();
  ring.Pop();
  ring.BeginPush()->assign(512, 'y');
  ring.CommitPush();
  ring.Front();
  ring.Pop();
  // Second lap: the first slot comes back with its capacity intact.
  std::string* again = ring.BeginPush();
  EXPECT_EQ(again, slot);
  EXPECT_GE(again->capacity(), 1024u);
}

TEST(SpscRingTest, CrossThreadStress) {
  constexpr uint64_t kCount = 200000;
  SpscRing<uint64_t> ring(64);
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount; ++i) {
      uint64_t* slot;
      while ((slot = ring.BeginPush()) == nullptr) std::this_thread::yield();
      *slot = i;
      ring.CommitPush();
    }
  });
  uint64_t expected = 0;
  uint64_t sum = 0;
  while (expected < kCount) {
    uint64_t* front;
    while ((front = ring.Front()) == nullptr) std::this_thread::yield();
    EXPECT_EQ(*front, expected);  // strict FIFO, no loss, no duplication
    sum += *front;
    ++expected;
    ring.Pop();
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

// ---------------------------------------------------------------------------
// SubscriptionRegistry

TEST(SubscriptionRegistryTest, SameFirstStepNameSharesAShard) {
  SubscriptionRegistry registry(4);
  auto a1 = registry.Subscribe("//book/title");
  auto a2 = registry.Subscribe("//book//author");
  auto b = registry.Subscribe("//chapter/section");
  ASSERT_TRUE(a1.ok() && a2.ok() && b.ok());
  const uint64_t epoch = registry.CurrentEpoch();
  const uint64_t book_mask = registry.MaskForTag("book", epoch);
  // Exactly one shard is interested in "book", and both //book queries
  // landed on it.
  ASSERT_NE(book_mask, 0u);
  EXPECT_EQ(book_mask & (book_mask - 1), 0u);
  const int book_shard = std::countr_zero(book_mask);
  auto set = registry.ShardSet(book_shard, epoch);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0].id, a1.value());
  EXPECT_EQ(set[1].id, a2.value());
  // A name nobody subscribed to routes nowhere.
  EXPECT_EQ(registry.MaskForTag("nosuch", epoch), 0u);
}

TEST(SubscriptionRegistryTest, WildcardFirstStepMarksShardTakeAll) {
  SubscriptionRegistry registry(2);
  EXPECT_EQ(registry.TakeAllMask(registry.CurrentEpoch()), 0u);
  auto w = registry.Subscribe("//*/price");
  ASSERT_TRUE(w.ok());
  const uint64_t epoch = registry.CurrentEpoch();
  const uint64_t mask = registry.TakeAllMask(epoch);
  ASSERT_NE(mask, 0u);
  EXPECT_EQ(mask & (mask - 1), 0u);  // exactly one shard
  // Before the wildcard subscription's epoch, no take-all.
  EXPECT_EQ(registry.TakeAllMask(epoch - 1), 0u);
}

TEST(SubscriptionRegistryTest, EpochsGateActivity) {
  SubscriptionRegistry registry(1);
  const uint64_t e0 = registry.CurrentEpoch();
  auto id = registry.Subscribe("//a/b");
  ASSERT_TRUE(id.ok());
  const uint64_t e1 = registry.CurrentEpoch();
  EXPECT_GT(e1, e0);
  EXPECT_TRUE(registry.ShardSet(0, e0).empty());   // not yet subscribed
  EXPECT_EQ(registry.ShardSet(0, e1).size(), 1u);  // active
  ASSERT_TRUE(registry.Unsubscribe(id.value()).ok());
  const uint64_t e2 = registry.CurrentEpoch();
  EXPECT_EQ(registry.ShardSet(0, e1).size(), 1u);  // still active at e1
  EXPECT_TRUE(registry.ShardSet(0, e2).empty());   // gone at e2
  EXPECT_EQ(registry.active_count(), 0u);
  // Double unsubscribe / unknown id are errors.
  EXPECT_FALSE(registry.Unsubscribe(id.value()).ok());
  EXPECT_FALSE(registry.Unsubscribe(9999).ok());
}

TEST(SubscriptionRegistryTest, ShardLastChangeTracksFolds) {
  SubscriptionRegistry registry(2);
  auto a = registry.Subscribe("//a/x");
  ASSERT_TRUE(a.ok());
  const uint64_t e1 = registry.CurrentEpoch();
  const uint64_t book_mask = registry.MaskForTag("a", e1);
  const int shard_a = std::countr_zero(book_mask);
  const uint64_t change1 = registry.ShardLastChange(shard_a, e1);
  EXPECT_NE(change1, 0u);
  // A subscription on the *other* shard must not dirty shard_a.
  auto b = registry.Subscribe("//b/y");
  ASSERT_TRUE(b.ok());
  const uint64_t e2 = registry.CurrentEpoch();
  const int shard_b = std::countr_zero(registry.MaskForTag("b", e2));
  if (shard_a != shard_b) {
    EXPECT_EQ(registry.ShardLastChange(shard_a, e2), change1);
  }
  EXPECT_GT(registry.ShardLastChange(shard_b, e2), change1);
}

TEST(SubscriptionRegistryTest, RejectsMalformedQueries) {
  SubscriptionRegistry registry(2);
  EXPECT_FALSE(registry.Subscribe("//a[").ok());
  EXPECT_FALSE(registry.Subscribe("").ok());
  EXPECT_EQ(registry.active_count(), 0u);
}

// ---------------------------------------------------------------------------
// Server end-to-end

/// Captures full MatchInfo (VectorMultiQuerySink drops byte_offset).
class RecordingSink : public core::MultiQueryResultSink {
 public:
  void OnResult(size_t query_index, const core::MatchInfo& match) override {
    items.emplace_back(query_index, match.id, match.byte_offset);
  }
  std::vector<std::tuple<size_t, xml::NodeId, uint64_t>> items;
};

/// (query_index, id, byte_offset) multiset from the single-threaded engine.
std::vector<std::tuple<size_t, xml::NodeId, uint64_t>> Oracle(
    const std::vector<std::string>& queries, const std::string& doc) {
  RecordingSink sink;
  auto engine = filter::FilterEngine::Create(queries, &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (engine.ok()) {
    EXPECT_TRUE(engine.value()->Consume({doc, false}).ok());
    EXPECT_TRUE(engine.value()->Consume({std::string_view(), true}).ok());
  }
  std::sort(sink.items.begin(), sink.items.end());
  return sink.items;
}

/// Poll()ed notifications mapped back to query indices via `ids`.
std::vector<std::tuple<size_t, xml::NodeId, uint64_t>> Collect(
    const std::vector<Notification>& notifications,
    const std::vector<SubscriptionId>& ids) {
  std::vector<std::tuple<size_t, xml::NodeId, uint64_t>> out;
  for (const Notification& n : notifications) {
    auto it = std::find(ids.begin(), ids.end(), n.subscription);
    EXPECT_NE(it, ids.end()) << "unknown subscription " << n.subscription;
    out.emplace_back(static_cast<size_t>(it - ids.begin()), n.match.id,
                     n.match.byte_offset);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const char kDoc[] =
    "<a><b><d/><e/></b><b><d/></b><c><d><e/></d></c><f>text</f></a>";

TEST(SubscriptionServerTest, MatchesSingleThreadedEngine) {
  const std::vector<std::string> queries = {
      "//a/b", "//b/d", "//a//e", "//c/d[e]", "//*", "//nomatch"};
  SubscriptionServer::Options options;
  options.num_shards = 3;
  auto server = SubscriptionServer::Create(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  std::vector<SubscriptionId> ids;
  for (const std::string& q : queries) {
    auto id = server.value()->Subscribe(q);
    ASSERT_TRUE(id.ok()) << q << ": " << id.status().ToString();
    ids.push_back(id.value());
  }
  {
    auto stream = server.value()->OpenStream();
    ASSERT_TRUE(stream->FeedDocument(kDoc).ok());
    std::vector<Notification> got;
    server.value()->Poll(&got);
    EXPECT_EQ(Collect(got, ids), Oracle(queries, kDoc));
  }
}

TEST(SubscriptionServerTest, ChunkedFeedMatchesWholeDocument) {
  const std::vector<std::string> queries = {"//b/d", "//a//e"};
  auto server = SubscriptionServer::Create();
  ASSERT_TRUE(server.ok());
  std::vector<SubscriptionId> ids;
  for (const std::string& q : queries) {
    ids.push_back(server.value()->Subscribe(q).value());
  }
  auto stream = server.value()->OpenStream();
  const std::string doc = kDoc;
  for (size_t i = 0; i < doc.size(); i += 7) {
    ASSERT_TRUE(stream->Consume({doc.substr(i, 7), false}).ok());
  }
  ASSERT_TRUE(stream->FinishDocument().ok());
  std::vector<Notification> got;
  server.value()->Poll(&got);
  EXPECT_EQ(Collect(got, ids), Oracle(queries, doc));
}

TEST(SubscriptionServerTest, ChurnLandsAtDocumentBoundaries) {
  auto server = SubscriptionServer::Create();
  ASSERT_TRUE(server.ok());
  auto stream = server.value()->OpenStream();
  const std::string doc = "<a><b/><b/></a>";

  // No subscriptions: the document flows and delivers nothing.
  ASSERT_TRUE(stream->FeedDocument(doc).ok());
  std::vector<Notification> got;
  EXPECT_EQ(server.value()->Poll(&got), 0u);

  auto id = server.value()->Subscribe("//a/b");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(stream->FeedDocument(doc).ok());
  got.clear();
  EXPECT_EQ(server.value()->Poll(&got), 2u);

  ASSERT_TRUE(server.value()->Unsubscribe(id.value()).ok());
  ASSERT_TRUE(stream->FeedDocument(doc).ok());
  got.clear();
  EXPECT_EQ(server.value()->Poll(&got), 0u);

  // Re-subscribing the same first-step name reuses the shard and works.
  auto id2 = server.value()->Subscribe("//a/b");
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(stream->FeedDocument(doc).ok());
  got.clear();
  EXPECT_EQ(server.value()->Poll(&got), 2u);
  for (const Notification& n : got) {
    EXPECT_EQ(n.subscription, id2.value());
  }
}

TEST(SubscriptionServerTest, CallbackDeliveryReceivesEveryMatch) {
  SubscriptionServer::Options options;
  options.num_shards = 2;
  options.notify_batch = 3;  // force multiple partial batches
  std::mutex mu;
  std::vector<Notification> delivered;
  options.on_batch = [&](std::vector<Notification>&& batch) {
    std::lock_guard<std::mutex> lock(mu);
    for (const Notification& n : batch) delivered.push_back(n);
  };
  auto server = SubscriptionServer::Create(options);
  ASSERT_TRUE(server.ok());
  const std::vector<std::string> queries = {"//a/b", "//b/d", "//a//e"};
  std::vector<SubscriptionId> ids;
  for (const std::string& q : queries) {
    ids.push_back(server.value()->Subscribe(q).value());
  }
  {
    auto stream = server.value()->OpenStream();
    ASSERT_TRUE(stream->FeedDocument(kDoc).ok());
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(Collect(delivered, ids), Oracle(queries, kDoc));
  // Poll must be empty: callback mode bypasses the queue.
  std::vector<Notification> polled;
  EXPECT_EQ(server.value()->Poll(&polled), 0u);
}

TEST(SubscriptionServerTest, ConcurrentStreamsDeliverTaggedResults) {
  auto server = SubscriptionServer::Create();
  ASSERT_TRUE(server.ok());
  auto sub = server.value()->Subscribe("//a/b");
  ASSERT_TRUE(sub.ok());
  constexpr int kStreams = 4;
  constexpr int kDocsPerStream = 8;
  std::vector<std::unique_ptr<serve::ServerStream>> streams;
  for (int i = 0; i < kStreams; ++i) {
    streams.push_back(server.value()->OpenStream());
  }
  std::vector<std::thread> feeders;
  for (int i = 0; i < kStreams; ++i) {
    feeders.emplace_back([&streams, i] {
      for (int d = 0; d < kDocsPerStream; ++d) {
        ASSERT_TRUE(streams[i]->FeedDocument("<a><b/><b/><c/></a>").ok());
      }
    });
  }
  for (std::thread& t : feeders) t.join();
  std::vector<Notification> got;
  server.value()->Poll(&got);
  ASSERT_EQ(got.size(), static_cast<size_t>(kStreams * kDocsPerStream * 2));
  // Every stream contributed exactly its share, tagged with its id.
  std::vector<int> per_stream(kStreams + 1, 0);
  for (const Notification& n : got) {
    ASSERT_GE(n.stream, streams[0]->stream_id());
    per_stream[n.stream - streams[0]->stream_id()]++;
  }
  for (int i = 0; i < kStreams; ++i) {
    EXPECT_EQ(per_stream[i], kDocsPerStream * 2);
  }
  streams.clear();  // must precede server destruction
}

TEST(SubscriptionServerTest, FinishDocumentIsABarrier) {
  // Every Poll right after FinishDocument must already see the matches —
  // repeat to give a racy implementation chances to fail.
  auto server = SubscriptionServer::Create();
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->Subscribe("//a/b").ok());
  auto stream = server.value()->OpenStream();
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(stream->FeedDocument("<a><b/></a>").ok());
    std::vector<Notification> got;
    ASSERT_EQ(server.value()->Poll(&got), 1u) << "round " << round;
  }
}

TEST(SubscriptionServerTest, ParseErrorPoisonsOnlyTheDocument) {
  auto server = SubscriptionServer::Create();
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->Subscribe("//a/b").ok());
  auto stream = server.value()->OpenStream();
  EXPECT_FALSE(stream->FeedDocument("<a><b></a>").ok());  // mismatched tag
  std::vector<Notification> got;
  server.value()->Poll(&got);
  got.clear();
  // The stream recovers for the next document.
  ASSERT_TRUE(stream->FeedDocument("<a><b/></a>").ok());
  EXPECT_EQ(server.value()->Poll(&got), 1u);
}

TEST(SubscriptionServerTest, RejectsBadOptionsAndQueries) {
  SubscriptionServer::Options options;
  options.num_shards = 0;
  EXPECT_FALSE(SubscriptionServer::Create(options).ok());
  options.num_shards = 65;
  EXPECT_FALSE(SubscriptionServer::Create(options).ok());
  auto server = SubscriptionServer::Create();
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server.value()->Subscribe("//a[").ok());
  EXPECT_EQ(server.value()->active_subscriptions(), 0u);
}

TEST(SubscriptionServerTest, ExportMetricsCoversEveryStage) {
  SubscriptionServer::Options options;
  options.num_shards = 2;
  auto server = SubscriptionServer::Create(options);
  ASSERT_TRUE(server.ok());
  auto sub = server.value()->Subscribe("//a/b");
  ASSERT_TRUE(sub.ok());
  {
    auto stream = server.value()->OpenStream();
    ASSERT_TRUE(stream->FeedDocument("<a><b/><b/></a>").ok());
  }
  std::vector<Notification> got;
  server.value()->Poll(&got);

  obs::MetricsRegistry registry;
  server.value()->ExportMetrics(&registry);
  const size_t first_count = registry.instrument_count();
  server.value()->ExportMetrics(&registry);  // refresh, not re-register
  EXPECT_EQ(registry.instrument_count(), first_count);

  uint64_t events = 0, matches = 0, documents = 0;
  bool saw_batch_hist = false, saw_latency_hist = false, saw_streams = false;
  for (const obs::MetricValue& mv : registry.Snapshot()) {
    if (mv.name.find(".events") != std::string::npos) {
      events += static_cast<uint64_t>(mv.value);
    }
    if (mv.name.find(".matches") != std::string::npos) {
      matches += static_cast<uint64_t>(mv.value);
    }
    if (mv.name.find(".documents") != std::string::npos) {
      documents += static_cast<uint64_t>(mv.value);
    }
    if (mv.name == "serve.batch_size.count" && mv.value >= 1) {
      saw_batch_hist = true;
    }
    if (mv.name == "serve.notify_latency_us.count" && mv.value >= 2) {
      saw_latency_hist = true;
    }
    if (mv.name == "serve.streams_opened" && mv.value == 1) {
      saw_streams = true;
    }
  }
  EXPECT_GE(events, 4u);  // boundary markers reach both shards
  EXPECT_EQ(matches, 2u);
  EXPECT_EQ(documents, 2u);  // one end marker per shard
  EXPECT_TRUE(saw_batch_hist);
  EXPECT_TRUE(saw_latency_hist);
  EXPECT_TRUE(saw_streams);
}

TEST(SubscriptionServerTest, RoutingSkipsUninterestedShards) {
  // With queries on distinct first steps and no wildcard, element events of
  // one subtree must only reach the shard interested in its first step:
  // start_events differs per shard even though boundary markers go to all.
  SubscriptionServer::Options options;
  options.num_shards = 2;
  auto server = SubscriptionServer::Create(options);
  ASSERT_TRUE(server.ok());
  auto a = server.value()->Subscribe("//bulk//x");
  auto b = server.value()->Subscribe("//rare/x");
  ASSERT_TRUE(a.ok() && b.ok());
  const uint64_t epoch = server.value()->registry().CurrentEpoch();
  const int bulk_shard =
      std::countr_zero(server.value()->registry().MaskForTag("bulk", epoch));
  const int rare_shard =
      std::countr_zero(server.value()->registry().MaskForTag("rare", epoch));
  ASSERT_NE(bulk_shard, rare_shard);  // two names, two shards (least-loaded)
  std::string doc = "<root>";
  for (int i = 0; i < 100; ++i) doc += "<bulk><x/></bulk>";
  doc += "<rare><x/></rare></root>";
  {
    auto stream = server.value()->OpenStream();
    ASSERT_TRUE(stream->FeedDocument(doc).ok());
  }
  const uint64_t bulk_starts =
      server.value()->shard(bulk_shard).counters().start_events.load();
  const uint64_t rare_starts =
      server.value()->shard(rare_shard).counters().start_events.load();
  EXPECT_EQ(bulk_starts, 200u);  // 100 <bulk> + 100 <x>; no <root>, no <rare>
  EXPECT_EQ(rare_starts, 2u);    // <rare> + its <x>
  std::vector<Notification> got;
  EXPECT_EQ(server.value()->Poll(&got), 101u);
}

}  // namespace
}  // namespace twigm
