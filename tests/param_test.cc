// Parameterized sweeps (TEST_P): engine agreement across a query corpus,
// chunk-size invariance, and adversarial-family scaling.

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/dom_eval.h"
#include "baselines/lazy_dfa.h"
#include "core/evaluator.h"
#include "data/adversarial.h"
#include "gtest/gtest.h"
#include "xml/dom.h"

namespace twigm {
namespace {

using core::EngineKind;

// A corpus of documents exercising recursion, attributes, text, siblings.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string>* kDocs = new std::vector<std::string>{
      "<a/>",
      "<a><b/><c/></a>",
      "<a><b><c/></b><c/></a>",
      "<a><a><a><b/></a></a></a>",
      "<a><b x=\"1\"><c>t</c></b><b><c>u</c></b></a>",
      "<a>1<b>2</b>3<c><b>4</b></c></a>",
      "<a><b><a><b><c/></b></a></b></a>",
      "<a><c/><c/><c/><b><c/></b></a>",
      "<a><b y=\"10\"/><b y=\"3\"/><b/></a>",
      "<a><b><c><d><e/></d></c></b></a>",
  };
  return *kDocs;
}

std::vector<xml::NodeId> Oracle(const std::string& query,
                                const std::string& doc) {
  Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
  EXPECT_TRUE(tree.ok()) << query;
  Result<std::vector<xml::NodeId>> ids =
      baselines::EvaluateOnDom(tree.value(), doc);
  EXPECT_TRUE(ids.ok());
  return ids.ok() ? std::move(ids).value() : std::vector<xml::NodeId>{};
}

std::vector<xml::NodeId> Stream(const std::string& query,
                                const std::string& doc, EngineKind kind) {
  core::EvaluatorOptions options;
  options.engine = kind;
  Result<std::vector<xml::NodeId>> ids =
      core::EvaluateToIds(query, doc, options);
  EXPECT_TRUE(ids.ok()) << ids.status().ToString();
  std::vector<xml::NodeId> out =
      ids.ok() ? std::move(ids).value() : std::vector<xml::NodeId>{};
  std::sort(out.begin(), out.end());
  return out;
}

// ---- TwigM vs oracle over a fixed query corpus ----

class TwigAgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TwigAgreementTest, MatchesOracleOnCorpus) {
  const std::string query = GetParam();
  for (const std::string& doc : Corpus()) {
    EXPECT_EQ(Stream(query, doc, EngineKind::kTwigM), Oracle(query, doc))
        << "query " << query << " doc " << doc;
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueryCorpus, TwigAgreementTest,
    ::testing::Values(
        "//a", "//b", "//c", "/a", "/a/b", "/a//c", "//a//b", "//a//b//c",
        "//a/b/c", "//*", "/*", "//a/*", "//*/c", "//a/*/c", "//a//*//c",
        "//a[b]", "//a[b]/c", "//a[b][c]", "//b[c]", "//a[b/c]",
        "//a[//c]", "//a[b[c]]", "//b[@x]", "//b[@y>5]", "//b[@x=\"1\"]",
        "//b[c=\"t\"]", "//b[.=\"2\"]", "//a[.!=\"zz\"]/b", "//*[c]",
        "//*[@y]", "//a[b]//c", "//a//b[c]", "/a[b][c]/b", "//b//c",
        "//a[c][b/c]", "//a/b[c]/c"));

// ---- linear queries: all four streaming/oracle implementations agree ----

class LinearAgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LinearAgreementTest, PathMTwigMDfaAgree) {
  const std::string query = GetParam();
  for (const std::string& doc : Corpus()) {
    const std::vector<xml::NodeId> expected = Oracle(query, doc);
    EXPECT_EQ(Stream(query, doc, EngineKind::kPathM), expected)
        << "PathM " << query << " " << doc;
    EXPECT_EQ(Stream(query, doc, EngineKind::kTwigM), expected)
        << "TwigM " << query << " " << doc;
    core::VectorResultSink sink;
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
    ASSERT_TRUE(tree.ok());
    auto dfa = baselines::LazyDfaEngine::Create(tree.value(), &sink);
    ASSERT_TRUE(dfa.ok());
    xml::EventDriver driver(dfa.value().get());
    xml::SaxParser parser(&driver);
    ASSERT_TRUE(parser.ParseAll(doc).ok());
    std::vector<xml::NodeId> got = sink.TakeIds();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "LazyDfa " << query << " " << doc;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LinearCorpus, LinearAgreementTest,
    ::testing::Values("//a", "/a/b", "/a//b", "//a//c", "//a/b//c", "//*",
                      "//a/*", "//*//c", "//a/*/c", "//a/*//c", "//a//*/c",
                      "/a/*/*/c", "//b//a", "//a//a", "//a//a//b"));

// ---- chunk-size invariance ----

class ChunkSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkSizeTest, ResultsIndependentOfChunking) {
  const size_t chunk = GetParam();
  const std::string doc =
      "<a><b x=\"1\">alpha<c/></b><b>beta</b><c><b><d/></b></c></a>";
  const char* kQuery = "//a//b[@x]/c";
  const std::vector<xml::NodeId> expected =
      Stream(kQuery, doc, EngineKind::kTwigM);

  core::VectorResultSink sink;
  auto proc = core::XPathStreamProcessor::Create(kQuery, &sink);
  ASSERT_TRUE(proc.ok());
  for (size_t pos = 0; pos < doc.size(); pos += chunk) {
    ASSERT_TRUE(
        proc.value()->Consume({std::string_view(doc).substr(pos, chunk), false}).ok());
  }
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  std::vector<xml::NodeId> got = sink.TakeIds();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSizeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 64, 4096));

// ---- adversarial-family scaling: result + state invariants per n ----

class AdversarialScalingTest : public ::testing::TestWithParam<int> {};

TEST_P(AdversarialScalingTest, OneResultAndLinearState) {
  const int n = GetParam();
  data::AdversarialOptions options;
  options.n = n;
  const std::string doc = data::GenerateAdversarial(options);

  Result<xpath::QueryTree> tree =
      xpath::QueryTree::Parse("//a[d]//b[e]//c");
  ASSERT_TRUE(tree.ok());
  core::VectorResultSink sink;
  auto machine = core::TwigMachine::Create(tree.value(), &sink);
  ASSERT_TRUE(machine.ok());
  xml::EventDriver driver(machine.value().get());
  xml::SaxParser parser(&driver);
  ASSERT_TRUE(parser.ParseAll(doc).ok());

  ASSERT_EQ(sink.ids().size(), 1u);
  EXPECT_EQ(sink.ids()[0], static_cast<xml::NodeId>(2 * n + 1));
  // Compact encoding: peak entries within [2n, 2n + 3].
  const uint64_t peak = machine.value()->stats().peak_stack_entries;
  EXPECT_GE(peak, static_cast<uint64_t>(2 * n));
  EXPECT_LE(peak, static_cast<uint64_t>(2 * n + 3));
}

INSTANTIATE_TEST_SUITE_P(Ns, AdversarialScalingTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32, 64, 128));

// ---- engine-forced evaluation over the Figure 6 book queries ----

struct EngineQueryCase {
  const char* query;
  EngineKind engine;
};

class EngineForcingTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(EngineForcingTest, ForcedEngineMatchesOracle) {
  const std::string query = std::get<0>(GetParam());
  const EngineKind kind = static_cast<EngineKind>(std::get<1>(GetParam()));
  const std::string doc =
      "<a><b><c/><d/></b><a><b><c/></b></a><c/></a>";
  EXPECT_EQ(Stream(query, doc, kind), Oracle(query, doc)) << query;
}

INSTANTIATE_TEST_SUITE_P(
    ForcedEngines, EngineForcingTest,
    ::testing::Values(
        std::make_tuple("//a//c", static_cast<int>(EngineKind::kPathM)),
        std::make_tuple("//a//c", static_cast<int>(EngineKind::kTwigM)),
        std::make_tuple("/a/b", static_cast<int>(EngineKind::kBranchM)),
        std::make_tuple("/a/b[c]", static_cast<int>(EngineKind::kBranchM)),
        std::make_tuple("/a/b[c][d]", static_cast<int>(EngineKind::kTwigM)),
        std::make_tuple("//a[b/c]//c", static_cast<int>(EngineKind::kTwigM))));

}  // namespace
}  // namespace twigm
