// Observability layer tests: metrics primitives (counter/gauge/histogram
// bucketing), the null-instrumentation no-op guarantee, trace events with
// byte offsets (per-result emission latency), per-query-node depth peaks,
// and Reset() reuse — the same compiled processor over multiple documents
// must produce identical emissions and identical metrics deltas as a fresh
// processor.

#include "obs/instrumentation.h"

#include <map>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace twigm {
namespace {

using core::EvaluatorOptions;
using core::VectorResultSink;
using core::XPathStreamProcessor;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Instrumentation;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceEvent;

TEST(MetricsTest, CounterIncAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeTracksPeak) {
  Gauge g;
  g.Set(5);
  g.Set(9);
  g.Set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.peak(), 9);
  g.Add(-2);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.peak(), 9);
}

TEST(MetricsTest, HistogramBucketing) {
  // Bounds are inclusive upper edges; the last bucket is overflow.
  Histogram h({10, 100, 1000});
  h.Observe(0);
  h.Observe(10);    // still the first bucket (x <= 10)
  h.Observe(11);    // second bucket
  h.Observe(100);   // second bucket
  h.Observe(999);   // third
  h.Observe(1001);  // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.total_count(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1001u);
  EXPECT_DOUBLE_EQ(h.mean(), (0 + 10 + 11 + 100 + 999 + 1001) / 6.0);
  h.Reset();
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.counts()[0], 0u);
}

TEST(MetricsTest, ExponentialBuckets) {
  const std::vector<uint64_t> b = obs::ExponentialBuckets(64, 4, 5);
  EXPECT_EQ(b, (std::vector<uint64_t>{64, 256, 1024, 4096, 16384}));
}

TEST(MetricsTest, RegistrySnapshotFlattens) {
  MetricsRegistry reg;
  Counter* c = reg.RegisterCounter("c");
  Gauge* g = reg.RegisterGauge("g");
  Histogram* h = reg.RegisterHistogram("h", {10, 100});
  c->Inc(3);
  g->Set(5);
  g->Set(2);
  h->Observe(50);
  const MetricsSnapshot snap = reg.Snapshot();
  std::map<std::string, double> by_name;
  for (const obs::MetricValue& v : snap) by_name[v.name] = v.value;
  EXPECT_EQ(by_name.at("c"), 3);
  EXPECT_EQ(by_name.at("g"), 2);
  EXPECT_EQ(by_name.at("g.peak"), 5);
  EXPECT_EQ(by_name.at("h.count"), 1);
  EXPECT_EQ(by_name.at("h.sum"), 50);
  EXPECT_EQ(by_name.at("h.le.100"), 1);
  EXPECT_EQ(by_name.at("h.le.10"), 0);
}

// --- processor integration ----------------------------------------------

constexpr char kDoc[] =
    "<a><b><c>x</c></b><d/><b><c>y</c></b><b>no-c</b></a>";

uint64_t RunCount(std::string_view query, std::string_view doc,
                  EvaluatorOptions options = EvaluatorOptions()) {
  VectorResultSink sink;
  auto proc = XPathStreamProcessor::Create(query, &sink, options);
  EXPECT_TRUE(proc.ok()) << proc.status().ToString();
  EXPECT_TRUE(proc.value()->Consume({doc, false}).ok());
  EXPECT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  return sink.ids().size();
}

TEST(InstrumentationTest, NullInstrumentationIsNoop) {
  // The default (no instrumentation) must run and produce the same results
  // as an instrumented run — this is the API-level no-op guarantee; the
  // <5% perf guarantee is checked by bench_fig7's Overhead pair in CI.
  const uint64_t plain = RunCount("//a[d]//b[c]", kDoc);

  Instrumentation instr;
  EvaluatorOptions options;
  options.instrumentation = &instr;
  const uint64_t instrumented = RunCount("//a[d]//b[c]", kDoc, options);
  EXPECT_EQ(plain, instrumented);
  EXPECT_EQ(plain, 2u);

  // Stage timers only tick when instrumentation is attached.
  EXPECT_GT(instr.stage_inclusive_ns(obs::Stage::kParse), 0u);
  const obs::StageBreakdown b = instr.stages();
  EXPECT_EQ(b.total_ns, instr.stage_inclusive_ns(obs::Stage::kParse));
  EXPECT_GE(b.total_ns, b.drive_ns + b.machine_ns + b.emit_ns);
}

TEST(InstrumentationTest, NodeDepthPeaksBoundedByDocumentDepth) {
  Instrumentation instr;
  EvaluatorOptions options;
  options.instrumentation = &instr;
  // Depth-8 chain of <a>; //a//a keeps one stack per query node.
  RunCount("//a//a", "<a><a><a><a><a><a><a><a/></a></a></a></a></a></a></a>",
           options);
  ASSERT_FALSE(instr.node_depth_peaks().empty());
  for (uint64_t peak : instr.node_depth_peaks()) {
    EXPECT_LE(peak, 8u);
  }
  // The root query node sees every <a>.
  EXPECT_EQ(instr.node_depth_peaks()[0], 8u);
}

TEST(InstrumentationTest, TraceEventsPairIntoEmissionLatency) {
  Instrumentation instr;
  obs::VectorTraceSink trace;
  instr.set_trace_sink(&trace);
  EvaluatorOptions options;
  options.instrumentation = &instr;
  RunCount("//a[d]//b[c]", kDoc, options);

  // Each emitted result has a candidate event at an equal-or-earlier
  // offset; emission latency in bytes is the difference.
  std::map<uint64_t, uint64_t> candidate_offset;
  uint64_t emits = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceEvent::Kind::kCandidate) {
      candidate_offset.emplace(e.node_id, e.byte_offset);
    } else if (e.kind == TraceEvent::Kind::kEmit) {
      ++emits;
      auto it = candidate_offset.find(e.node_id);
      ASSERT_NE(it, candidate_offset.end())
          << "emit without candidate for node " << e.node_id;
      EXPECT_GE(e.byte_offset, it->second);
    }
  }
  EXPECT_EQ(emits, 2u);

  // Pushes and pops balance over a whole document.
  uint64_t pushes = 0, pops = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == TraceEvent::Kind::kStackPush) ++pushes;
    if (e.kind == TraceEvent::Kind::kStackPop) ++pops;
  }
  EXPECT_EQ(pushes, pops);
  EXPECT_GT(pushes, 0u);
}

TEST(InstrumentationTest, PruneEventOnFailedPredicate) {
  Instrumentation instr;
  obs::CountingTraceSink trace;
  instr.set_trace_sink(&trace);
  EvaluatorOptions options;
  options.instrumentation = &instr;
  // <b> without <c> child: its candidate is pruned at </b>.
  RunCount("//b[c]", "<a><b><x/></b></a>", options);
  EXPECT_GT(trace.count(TraceEvent::Kind::kPrune), 0u);
  EXPECT_EQ(trace.count(TraceEvent::Kind::kEmit), 0u);
}

TEST(InstrumentationTest, ResetValuesClearsMeasurements) {
  Instrumentation instr;
  EvaluatorOptions options;
  options.instrumentation = &instr;
  RunCount("//b", "<a><b/></a>", options);
  EXPECT_GT(instr.stage_inclusive_ns(obs::Stage::kParse), 0u);
  instr.ResetValues();
  EXPECT_EQ(instr.stage_inclusive_ns(obs::Stage::kParse), 0u);
  EXPECT_EQ(instr.byte_offset(), 0u);
  for (uint64_t peak : instr.node_depth_peaks()) EXPECT_EQ(peak, 0u);
}

// --- Reset() reuse -------------------------------------------------------

MetricsSnapshot EngineSnapshot(XPathStreamProcessor* proc,
                               MetricsRegistry* reg) {
  proc->ExportMetrics(reg);
  return reg->Snapshot();
}

TEST(ResetReuseTest, SameEmissionsAndMetricsAsFreshProcessor) {
  const char* query = "//a[d]//b[c]";
  const std::vector<std::string> docs = {
      kDoc,
      "<a><d/><b><c/></b><b><c/></b><b><c/></b></a>",
      "<a><b><c/></b></a>",  // no <d>: zero results
  };

  // One processor, Reset() between documents.
  VectorResultSink reused_sink;
  auto reused = XPathStreamProcessor::Create(query, &reused_sink);
  ASSERT_TRUE(reused.ok());

  for (const std::string& doc : docs) {
    // Per-document emissions and metrics from the reused processor...
    MetricsRegistry reused_reg;
    const MetricsSnapshot before =
        EngineSnapshot(reused.value().get(), &reused_reg);
    ASSERT_TRUE(reused.value()->Consume({doc, false}).ok());
    ASSERT_TRUE(reused.value()->Consume({std::string_view(), true}).ok());
    const MetricsSnapshot after =
        EngineSnapshot(reused.value().get(), &reused_reg);
    const std::vector<xml::NodeId> reused_ids = reused_sink.TakeIds();
    reused.value()->Reset();

    // ...must equal a fresh processor's over the same document.
    VectorResultSink fresh_sink;
    auto fresh = XPathStreamProcessor::Create(query, &fresh_sink);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(fresh.value()->Consume({doc, false}).ok());
    ASSERT_TRUE(fresh.value()->Consume({std::string_view(), true}).ok());
    MetricsRegistry fresh_reg;
    const MetricsSnapshot fresh_snap =
        EngineSnapshot(fresh.value().get(), &fresh_reg);

    EXPECT_EQ(reused_ids, fresh_sink.ids()) << doc;

    // Identical deltas: engine counters accumulate across Reset(), so the
    // difference over this document must match the fresh run's totals.
    // Peaks are high-water marks and only grow, so compare deltas for
    // counters and >= for peaks. The hotpath.* gauges (interner size, pool
    // high-water) report capacity Reset() deliberately retains, so they
    // compare like peaks.
    ASSERT_EQ(after.size(), fresh_snap.size());
    for (size_t i = 0; i < after.size(); ++i) {
      ASSERT_EQ(after[i].name, fresh_snap[i].name);
      if (after[i].name.find("peak") != std::string::npos ||
          after[i].name.rfind("hotpath.", 0) == 0) {
        EXPECT_GE(after[i].value, fresh_snap[i].value) << after[i].name;
      } else {
        EXPECT_EQ(after[i].value - before[i].value, fresh_snap[i].value)
            << after[i].name << " over " << doc;
      }
    }
  }
}

TEST(ResetReuseTest, MatchInfoOffsetsIdenticalAcrossReset) {
  // Byte offsets restart at zero for each document.
  class OffsetSink : public core::MatchObserver {
   public:
    void OnResult(const core::MatchInfo& match) override {
      offsets.push_back(match.byte_offset);
    }
    std::vector<uint64_t> offsets;
  };

  OffsetSink sink;
  auto proc = XPathStreamProcessor::Create("//b[c]", &sink);
  ASSERT_TRUE(proc.ok());
  ASSERT_TRUE(proc.value()->Consume({kDoc, false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  const std::vector<uint64_t> first_run = sink.offsets;
  sink.offsets.clear();

  // Same processor after Reset(): offsets restart at zero and the second
  // pass over the same bytes reports identical positions.
  proc.value()->Reset();
  ASSERT_TRUE(proc.value()->Consume({kDoc, false}).ok());
  ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  EXPECT_EQ(sink.offsets, first_run);
  ASSERT_FALSE(first_run.empty());
  for (uint64_t off : first_run) EXPECT_GT(off, 0u);
}

}  // namespace
}  // namespace twigm
