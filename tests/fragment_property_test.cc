// Property tests tying fragment mode to id mode: on random documents and
// queries, the fragment stream must carry exactly the id results, each
// fragment must reparse, and its root tag / subtree size must match the
// result node in the original document. Also: random query strings must
// never crash the front end.

#include <algorithm>
#include <map>
#include <string>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/union_query.h"
#include "gtest/gtest.h"
#include "xml/dom.h"
#include "xml/xml_writer.h"
#include "xpath/query_tree.h"

namespace twigm {
namespace {

// --- reuse small generators (independent of differential_test's) ---

void EmitRandom(Rng* rng, int depth, xml::XmlWriter* w) {
  static const char* kTags[] = {"a", "b", "c"};
  w->Open(depth == 1 ? "a" : kTags[rng->Below(3)]);
  if (rng->Chance(0.25)) w->Attr("x", "1");
  if (rng->Chance(0.25)) w->Text("t");
  if (depth < 5) {
    const int children = static_cast<int>(rng->Below(4));
    for (int i = 0; i < children; ++i) EmitRandom(rng, depth + 1, w);
  }
  w->Close();
}

std::string RandomDoc(Rng* rng) {
  xml::XmlWriter w(false);
  EmitRandom(rng, 1, &w);
  return std::move(w).TakeString();
}

std::string RandomQuery(Rng* rng) {
  static const char* kSteps[] = {"a", "b", "c", "*"};
  std::string q;
  const int steps = 1 + static_cast<int>(rng->Below(3));
  for (int i = 0; i < steps; ++i) {
    q += rng->Chance(0.5) ? "//" : "/";
    if (i == 0) q = "//";  // keep it anchored but permissive
    q += kSteps[rng->Below(4)];
    if (rng->Chance(0.3)) {
      q += "[";
      q += kSteps[rng->Below(3)];
      q += "]";
    }
    if (rng->Chance(0.15)) q += "[@x]";
  }
  return q;
}

// Counts elements in a subtree of the original document.
size_t SubtreeSize(const xml::DomNode* node) {
  size_t total = 1;
  for (const xml::DomNode* c : node->children) total += SubtreeSize(c);
  return total;
}

TEST(FragmentPropertyTest, FragmentsMatchIdResults) {
  Rng rng(0xF7A6);
  for (int trial = 0; trial < 250; ++trial) {
    const std::string doc = RandomDoc(&rng);
    const std::string query = RandomQuery(&rng);

    core::VectorFragmentSink fragments;
    auto proc = core::XPathStreamProcessor::Create(query, &fragments);
    ASSERT_TRUE(proc.ok()) << query;
    ASSERT_TRUE(proc.value()->Consume({doc, false}).ok());
    ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());

    // One fragment per id result, same multiset of ids.
    ASSERT_EQ(fragments.items().size(), fragments.ids().size()) << query;
    std::vector<xml::NodeId> frag_ids;
    for (const auto& item : fragments.items()) frag_ids.push_back(item.id);
    std::vector<xml::NodeId> result_ids = fragments.ids();
    std::sort(frag_ids.begin(), frag_ids.end());
    std::sort(result_ids.begin(), result_ids.end());
    EXPECT_EQ(frag_ids, result_ids) << query;

    // Each fragment reparses and structurally matches the original node.
    Result<xml::DomDocument> original = xml::DomDocument::Parse(doc);
    ASSERT_TRUE(original.ok());
    std::map<xml::NodeId, const xml::DomNode*> by_id;
    for (const xml::DomNode& n : original.value().nodes()) {
      by_id[n.id] = &n;
    }
    for (const auto& item : fragments.items()) {
      Result<xml::DomDocument> reparsed =
          xml::DomDocument::Parse(item.xml);
      ASSERT_TRUE(reparsed.ok())
          << "fragment does not reparse: " << item.xml;
      const xml::DomNode* node = by_id.at(item.id);
      EXPECT_EQ(reparsed.value().root()->tag, node->tag) << query;
      EXPECT_EQ(reparsed.value().size(), SubtreeSize(node)) << query;
      EXPECT_EQ(reparsed.value().root()->text, node->text) << query;
    }
  }
}

TEST(FragmentPropertyTest, UnionAgreesWithBranchUnion) {
  Rng rng(0x0111);
  for (int trial = 0; trial < 150; ++trial) {
    const std::string doc = RandomDoc(&rng);
    const std::string q1 = RandomQuery(&rng);
    const std::string q2 = RandomQuery(&rng);

    core::VectorResultSink sink;
    auto proc = core::UnionQueryProcessor::Create(q1 + " | " + q2, &sink);
    ASSERT_TRUE(proc.ok()) << q1 << " | " << q2;
    ASSERT_TRUE(proc.value()->Consume({doc, false}).ok());
    ASSERT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
    std::vector<xml::NodeId> got = sink.TakeIds();
    std::sort(got.begin(), got.end());

    Result<std::vector<xml::NodeId>> r1 = core::EvaluateToIds(q1, doc);
    Result<std::vector<xml::NodeId>> r2 = core::EvaluateToIds(q2, doc);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    std::vector<xml::NodeId> expected = r1.value();
    expected.insert(expected.end(), r2.value().begin(), r2.value().end());
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    EXPECT_EQ(got, expected) << q1 << " | " << q2;
  }
}

TEST(QueryFuzzTest, RandomQueryStringsNeverCrash) {
  Rng rng(0xFA22);
  static const char* kPieces[] = {"/",  "//", "a",  "b",   "*",   "[",
                                  "]",  "@",  "=",  "\"v\"", "'w'", "<",
                                  ">=", ".",  "|",  "5",   " ",   "!="};
  int parsed_ok = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::string query;
    const int len = 1 + static_cast<int>(rng.Below(10));
    for (int i = 0; i < len; ++i) {
      query += kPieces[rng.Below(18)];
    }
    Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(query);
    if (tree.ok()) {
      ++parsed_ok;
      // Anything that parses must also compile to a machine and run.
      core::VectorResultSink sink;
      auto proc = core::XPathStreamProcessor::Create(query, &sink);
      if (proc.ok()) {
        EXPECT_TRUE(proc.value()->Consume({"<a><b x=\"1\">t</b></a>", false}).ok());
        EXPECT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
      }
    } else {
      EXPECT_FALSE(tree.status().message().empty());
    }
  }
  // The generator should produce at least a few valid queries.
  EXPECT_GT(parsed_ok, 5);
}

}  // namespace
}  // namespace twigm
