// Differential tests for earliest query answering (DESIGN.md §13).
//
// The contracts under test, over ~100 DTD-constrained generated documents:
//
//   * kObserve is *byte-exact* to kOff — it measures the emission gap
//     without perturbing results, offsets, or emission order;
//   * kOn emits the same (id) result multiset as kOff, never later
//     (per-result byte offsets can only shrink), and agrees with the
//     DomEvaluator oracle;
//   * adversarial DTDs (absent / partial / contradicting) with
//     assume_valid = false leave the engine exact on any well-formed
//     document — the zero-fact table disables static proofs and the
//     dynamic certainty cascade alone stays sound;
//   * the shared-prefix FilterEngine backend with decision tables agrees
//     per query with an unanalyzed MultiQueryProcessor.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/decision_analysis.h"
#include "analysis/dtd_structure.h"
#include "baselines/dom_eval.h"
#include "core/evaluator.h"
#include "core/multi_query.h"
#include "data/book.h"
#include "dtd/dtd_generator.h"
#include "dtd/dtd_parser.h"
#include "filter/analyzed_engine.h"
#include "gtest/gtest.h"
#include "xpath/query_tree.h"

namespace twigm {
namespace {

using core::EarlyDecisionMode;
using core::MatchInfo;

// Predicate-heavy Book queries: every class of static fact fires on at
// least one of them (implied branches, attribute tests, value tests,
// useless-subtree pruning, wildcard binding).
const char* const kQueries[] = {
    "//section[title]/figure",
    "//section[@id]//figure",
    "//figure[image]/title",
    "//section[title=\"data\"]//image",
    "//*[title][figure[image]]//p",
    "//section[figure[image]][@id]//section[p]/title",
    "//book[author]//section[title]",
    "//section[p][figure]/title",
};

std::string BookDtdText() {
  return std::string("<!ELEMENT collection (book*)>\n") + data::kBookDtd;
}

const dtd::Dtd& BookDtd() {
  static const dtd::Dtd* dtd = [] {
    auto parsed = dtd::ParseDtd(BookDtdText());
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return new dtd::Dtd(std::move(parsed).value());
  }();
  return *dtd;
}

const analysis::DtdStructure& BookStructure() {
  static const analysis::DtdStructure* dtds = [] {
    auto built = analysis::DtdStructure::Build(BookDtd());
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return new analysis::DtdStructure(std::move(built).value());
  }();
  return *dtds;
}

// One small DTD-valid Book document per seed; depth/density vary with the
// seed so the corpus covers shallow, deep, sparse, and bushy shapes.
std::string GeneratedDoc(uint64_t seed, const char* root = "book") {
  dtd::GeneratorOptions options;
  options.seed = seed;
  options.number_levels = 6 + static_cast<int>(seed % 7);
  options.max_repeats = 3;
  options.optional_probability = 0.4 + 0.1 * static_cast<double>(seed % 5);
  auto doc = dtd::GenerateDocument(BookDtd(), root, options);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return doc.ok() ? std::move(doc).value() : std::string();
}

// Streams `doc` through one single-query processor in `mode`; `dtds`
// (when given) installs a decision table compiled with `assume_valid`.
std::vector<MatchInfo> RunStream(const std::string& query, std::string_view doc,
                           const analysis::DtdStructure* dtds,
                           EarlyDecisionMode mode, bool assume_valid = true) {
  core::VectorResultSink sink;
  core::EvaluatorOptions options;
  options.enable_early_decisions = mode;
  auto proc = core::XPathStreamProcessor::Create(query, &sink, options);
  EXPECT_TRUE(proc.ok()) << query << ": " << proc.status().ToString();
  if (!proc.ok()) return {};
  if (dtds != nullptr && mode != EarlyDecisionMode::kOff) {
    analysis::EnableEarlyDecisions(proc.value().get(), *dtds,
                                   {.assume_valid = assume_valid});
  }
  // Two chunks: early emission must be insensitive to chunk boundaries.
  const size_t half = doc.size() / 2;
  EXPECT_TRUE(proc.value()->Consume({doc.substr(0, half), false}).ok());
  EXPECT_TRUE(proc.value()->Consume({doc.substr(half), false}).ok());
  EXPECT_TRUE(proc.value()->Consume({std::string_view(), true}).ok());
  return sink.matches();
}

std::vector<xml::NodeId> SortedIds(const std::vector<MatchInfo>& matches) {
  std::vector<xml::NodeId> ids;
  ids.reserve(matches.size());
  for (const MatchInfo& m : matches) ids.push_back(m.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// kOn may only move a result's emission *earlier*; ids are unique per
// document (one emission per node per epoch), so pairing by id is exact.
void ExpectSameIdsNeverLater(const std::vector<MatchInfo>& off,
                             const std::vector<MatchInfo>& on,
                             const std::string& label) {
  ASSERT_EQ(SortedIds(off), SortedIds(on)) << label;
  std::map<xml::NodeId, uint64_t> off_offset;
  for (const MatchInfo& m : off) off_offset[m.id] = m.byte_offset;
  for (const MatchInfo& m : on) {
    EXPECT_LE(m.byte_offset, off_offset[m.id])
        << label << " id " << m.id << " emitted later under kOn";
  }
}

constexpr uint64_t kCorpusSeeds = 100;

TEST(EarlyDecisionDifferential, ObserveIsByteExactAndOnAgreesWithDom) {
  const analysis::DtdStructure& dtds = BookStructure();
  for (uint64_t seed = 1; seed <= kCorpusSeeds; ++seed) {
    const std::string doc = GeneratedDoc(seed);
    ASSERT_FALSE(doc.empty());
    for (const char* query : kQueries) {
      const std::string label =
          std::string(query) + " seed " + std::to_string(seed);
      const std::vector<MatchInfo> off =
          RunStream(query, doc, nullptr, EarlyDecisionMode::kOff);
      const std::vector<MatchInfo> observe =
          RunStream(query, doc, &dtds, EarlyDecisionMode::kObserve);
      // Observe mode must not perturb anything: same results, same
      // emission order, same byte offsets.
      ASSERT_EQ(off.size(), observe.size()) << label;
      for (size_t i = 0; i < off.size(); ++i) {
        EXPECT_EQ(off[i].id, observe[i].id) << label << " result " << i;
        EXPECT_EQ(off[i].byte_offset, observe[i].byte_offset)
            << label << " result " << i;
      }

      const std::vector<MatchInfo> on =
          RunStream(query, doc, &dtds, EarlyDecisionMode::kOn);
      ExpectSameIdsNeverLater(off, on, label);

      // All three modes agree with the DOM oracle.
      auto tree = xpath::QueryTree::Parse(query);
      ASSERT_TRUE(tree.ok()) << label;
      auto oracle = baselines::EvaluateOnDom(tree.value(), doc);
      ASSERT_TRUE(oracle.ok()) << label << ": "
                               << oracle.status().ToString();
      std::vector<xml::NodeId> expected = std::move(oracle).value();
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(expected, SortedIds(off)) << label;
      EXPECT_EQ(expected, SortedIds(on)) << label;
    }
  }
}

TEST(EarlyDecisionDifferential, AdversarialDtdsStayExact) {
  // Documents are valid for the *Book* DTD; the installed tables describe
  // something else entirely. assume_valid = false must compile zero-fact
  // tables, leaving only the (input-agnostic) dynamic certainty cascade.
  const char* const kAdversarialDtds[] = {
      // Partial: most elements undeclared.
      "<!ELEMENT figure (title, image)>\n"
      "<!ELEMENT title (#PCDATA)>\n"
      "<!ELEMENT image EMPTY>\n",
      // Contradicting: models disagree with the documents (section demands
      // figure, forbids title; book forbids sections entirely).
      "<!ELEMENT book (title)>\n"
      "<!ELEMENT title (#PCDATA)>\n"
      "<!ELEMENT section (figure+)>\n"
      "<!ELEMENT figure EMPTY>\n"
      "<!ELEMENT p (#PCDATA)>\n"
      "<!ELEMENT author (#PCDATA)>\n"
      "<!ELEMENT image EMPTY>\n",
  };
  std::vector<analysis::DtdStructure> structures;
  for (const char* text : kAdversarialDtds) {
    auto parsed = dtd::ParseDtd(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto built = analysis::DtdStructure::Build(parsed.value());
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    structures.push_back(std::move(built).value());
  }

  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const std::string doc = GeneratedDoc(seed);
    for (const char* query : kQueries) {
      const std::string label =
          std::string(query) + " seed " + std::to_string(seed);
      const std::vector<MatchInfo> off =
          RunStream(query, doc, nullptr, EarlyDecisionMode::kOff);
      // Absent: kOn with no table installed at all.
      ExpectSameIdsNeverLater(
          off, RunStream(query, doc, nullptr, EarlyDecisionMode::kOn),
          label + " [absent]");
      for (size_t d = 0; d < structures.size(); ++d) {
        const std::string which =
            label + (d == 0 ? " [partial]" : " [contradicting]");
        ExpectSameIdsNeverLater(
            off,
            RunStream(query, doc, &structures[d], EarlyDecisionMode::kOn,
                /*assume_valid=*/false),
            which);
        // Observe with a zero-fact table stays byte-exact too.
        const std::vector<MatchInfo> observe =
            RunStream(query, doc, &structures[d], EarlyDecisionMode::kObserve,
                /*assume_valid=*/false);
        ASSERT_EQ(off.size(), observe.size()) << which;
        for (size_t i = 0; i < off.size(); ++i) {
          EXPECT_EQ(off[i].byte_offset, observe[i].byte_offset) << which;
        }
      }
    }
  }
}

class PerQuerySink : public core::MultiQueryResultSink {
 public:
  void OnResult(size_t query_index, const MatchInfo& match) override {
    ids_[query_index].push_back(match.id);
  }
  std::vector<xml::NodeId> Sorted(size_t query_index) const {
    auto it = ids_.find(query_index);
    std::vector<xml::NodeId> ids =
        it != ids_.end() ? it->second : std::vector<xml::NodeId>{};
    std::sort(ids.begin(), ids.end());
    return ids;
  }

 private:
  std::map<size_t, std::vector<xml::NodeId>> ids_;
};

TEST(EarlyDecisionDifferential, FilterEngineMatchesProduct) {
  // The shared-prefix trie backend with trie-usefulness skips and
  // tail-machine decision tables must agree per query with the unanalyzed
  // product construction — including on queries the tables refute outright.
  std::vector<std::string> queries(kQueries, kQueries + 8);
  queries.push_back("//section/book");              // refuted: no such child
  queries.push_back("//figure[p]/title");           // refuted predicate
  queries.push_back("//section[title][title]");     // duplicate obligation
  queries.push_back("//book[author][author]//p");   // implied duplicate
  queries.push_back("//figure/image");
  queries.push_back("//book/title");

  const analysis::DtdStructure& dtds = BookStructure();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    // The analyzer's level bounds assume the DTD's document root, so these
    // documents start at <collection> (0–2 books each at max_repeats 2).
    const std::string doc = GeneratedDoc(seed, "collection");

    PerQuerySink base_sink;
    auto base = core::MultiQueryProcessor::Create(queries, &base_sink);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    ASSERT_TRUE(base.value()->Consume({doc, false}).ok());
    ASSERT_TRUE(base.value()->Consume({std::string_view(), true}).ok());

    filter::AnalyzedEngine::Options options;
    options.dtd = &dtds;
    options.backend = filter::AnalyzedEngine::Backend::kFilter;
    options.evaluator.enable_early_decisions = EarlyDecisionMode::kOn;
    PerQuerySink early_sink;
    auto early = filter::AnalyzedEngine::Create(queries, &early_sink, options);
    ASSERT_TRUE(early.ok()) << early.status().ToString();
    EXPECT_GT(early.value()->analysis_stats().decision_facts, 0u);
    ASSERT_TRUE(early.value()->Consume({doc, false}).ok());
    ASSERT_TRUE(early.value()->Consume({std::string_view(), true}).ok());

    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(base_sink.Sorted(q), early_sink.Sorted(q))
          << queries[q] << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace twigm
