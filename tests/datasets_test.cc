#include "data/datasets.h"

#include "data/adversarial.h"
#include "data/book.h"
#include "data/protein.h"
#include "data/xmark.h"
#include "gtest/gtest.h"
#include "xml/dom.h"
#include "xpath/query_tree.h"

namespace twigm::data {
namespace {

TEST(FeaturesTest, CountsElementsAndDepth) {
  Result<DatasetFeatures> f =
      ComputeFeatures("<a><b k=\"1\"><c/></b>text</a>");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value().elements, 3u);
  EXPECT_EQ(f.value().attributes, 1u);
  EXPECT_EQ(f.value().max_depth, 3);
  EXPECT_EQ(f.value().text_bytes, 4u);
  EXPECT_FALSE(f.value().recursive);
}

TEST(FeaturesTest, DetectsRecursion) {
  Result<DatasetFeatures> recursive = ComputeFeatures("<a><b><a/></b></a>");
  ASSERT_TRUE(recursive.ok());
  EXPECT_TRUE(recursive.value().recursive);

  // Same tag at the same depth in different subtrees is NOT recursion.
  Result<DatasetFeatures> flat = ComputeFeatures("<r><a/><a/></r>");
  ASSERT_TRUE(flat.ok());
  EXPECT_FALSE(flat.value().recursive);
}

TEST(FeaturesTest, MalformedInputFails) {
  EXPECT_FALSE(ComputeFeatures("<a><b></a>").ok());
}

TEST(FeaturesTest, ToStringMentionsEverything) {
  Result<DatasetFeatures> f = ComputeFeatures("<a><a/></a>");
  ASSERT_TRUE(f.ok());
  const std::string s = f.value().ToString();
  EXPECT_NE(s.find("size="), std::string::npos);
  EXPECT_NE(s.find("depth=2"), std::string::npos);
  EXPECT_NE(s.find(" recursive"), std::string::npos);
}

TEST(BookDatasetTest, GeneratesRecursiveWellFormedData) {
  BookOptions options;
  options.seed = 20;
  Result<std::string> doc = GenerateBook(options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  Result<DatasetFeatures> f = ComputeFeatures(doc.value());
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_GT(f.value().elements, 10u);
  EXPECT_LE(f.value().max_depth, 20);
}

TEST(BookDatasetTest, SomeSeedProducesRecursion) {
  // Sections nest; across a few seeds at least one document must contain
  // section-in-section.
  bool found_recursive = false;
  for (uint64_t seed = 1; seed <= 10 && !found_recursive; ++seed) {
    BookOptions options;
    options.seed = seed;
    Result<std::string> doc = GenerateBook(options);
    ASSERT_TRUE(doc.ok());
    Result<DatasetFeatures> f = ComputeFeatures(doc.value());
    ASSERT_TRUE(f.ok());
    found_recursive = f.value().recursive;
  }
  EXPECT_TRUE(found_recursive);
}

TEST(BookDatasetTest, Deterministic) {
  BookOptions options;
  options.seed = 4;
  Result<std::string> a = GenerateBook(options);
  Result<std::string> b = GenerateBook(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(BookDatasetTest, CopiesScaleContent) {
  // Copies are identical, so element counts (minus the <collection>
  // wrapper) must scale exactly linearly between 2 and 3 copies.
  BookOptions two;
  two.seed = 9;
  two.copies = 2;
  BookOptions three = two;
  three.copies = 3;
  Result<std::string> doc2 = GenerateBook(two);
  Result<std::string> doc3 = GenerateBook(three);
  ASSERT_TRUE(doc2.ok());
  ASSERT_TRUE(doc3.ok());
  Result<DatasetFeatures> f2 = ComputeFeatures(doc2.value());
  Result<DatasetFeatures> f3 = ComputeFeatures(doc3.value());
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(f3.ok());
  ASSERT_EQ((f2.value().elements - 1) % 2, 0u);
  EXPECT_EQ(f3.value().elements - 1, 3 * ((f2.value().elements - 1) / 2));
}

TEST(BookDatasetTest, MinBytesReached) {
  BookOptions options;
  options.min_bytes = 200000;
  Result<std::string> doc = GenerateBook(options);
  ASSERT_TRUE(doc.ok());
  EXPECT_GE(doc.value().size(), 200000u);
  EXPECT_TRUE(ComputeFeatures(doc.value()).ok());
}

TEST(ProteinDatasetTest, NonRecursiveAndShallow) {
  ProteinOptions options;
  options.entries = 50;
  Result<std::string> doc = GenerateProtein(options);
  ASSERT_TRUE(doc.ok());
  Result<DatasetFeatures> f = ComputeFeatures(doc.value());
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f.value().recursive);
  EXPECT_LE(f.value().max_depth, 7);
  Result<xml::DomDocument> dom = xml::DomDocument::Parse(doc.value());
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(dom.value().root()->tag, "ProteinDatabase");
  EXPECT_EQ(dom.value().root()->children.size(), 50u);
}

TEST(ProteinDatasetTest, MinBytesMode) {
  ProteinOptions options;
  options.min_bytes = 100000;
  Result<std::string> doc = GenerateProtein(options);
  ASSERT_TRUE(doc.ok());
  EXPECT_GE(doc.value().size(), 100000u);
}

TEST(XmarkDatasetTest, StructureAndRecursion) {
  XmarkOptions options;
  options.people = 40;
  Result<std::string> doc = GenerateXmark(options);
  ASSERT_TRUE(doc.ok());
  Result<DatasetFeatures> f = ComputeFeatures(doc.value());
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  // parlist within parlist makes the auction data recursive.
  EXPECT_TRUE(f.value().recursive);
  Result<xml::DomDocument> dom = xml::DomDocument::Parse(doc.value());
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(dom.value().root()->tag, "site");
  ASSERT_EQ(dom.value().root()->children.size(), 6u);
  EXPECT_EQ(dom.value().root()->children[0]->tag, "regions");
  EXPECT_EQ(dom.value().root()->children[3]->tag, "people");
}

TEST(XmarkDatasetTest, Deterministic) {
  XmarkOptions options;
  options.people = 20;
  Result<std::string> a = GenerateXmark(options);
  Result<std::string> b = GenerateXmark(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(AdversarialDatasetTest, ShapeMatchesFigure1) {
  AdversarialOptions options;
  options.n = 3;
  const std::string doc = GenerateAdversarial(options);
  Result<xml::DomDocument> dom = xml::DomDocument::Parse(doc);
  ASSERT_TRUE(dom.ok());
  // a1 > a2 > a3 > b1 > b2 > b3 > c ; e under b1 ; d under a1.
  const xml::DomNode* a1 = dom.value().root();
  EXPECT_EQ(a1->tag, "a");
  ASSERT_EQ(a1->children.size(), 2u);  // a2 and d
  EXPECT_EQ(a1->children[1]->tag, "d");
  const xml::DomNode* a3 = a1->children[0]->children[0];
  EXPECT_EQ(a3->tag, "a");
  const xml::DomNode* b1 = a3->children[0];
  EXPECT_EQ(b1->tag, "b");
  ASSERT_EQ(b1->children.size(), 2u);  // b2 and e
  EXPECT_EQ(b1->children[1]->tag, "e");
  EXPECT_EQ(dom.value().size(), static_cast<size_t>(2 * 3 + 3));
  EXPECT_EQ(dom.value().depth(), 7);  // a*3, b*3, c
}

TEST(AdversarialDatasetTest, OptionsControlPredicateWitnesses) {
  AdversarialOptions options;
  options.n = 2;
  options.with_d = false;
  options.with_e = false;
  options.c_count = 3;
  const std::string doc = GenerateAdversarial(options);
  Result<xml::DomDocument> dom = xml::DomDocument::Parse(doc);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(dom.value().size(), static_cast<size_t>(2 + 2 + 3));
}

TEST(QuerySetsTest, AllQueriesCompile) {
  for (const auto* set : {&BookQueries(), &ProteinQueries(),
                          &AuctionQueries()}) {
    for (const QuerySpec& spec : *set) {
      Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(spec.text);
      EXPECT_TRUE(tree.ok())
          << spec.name << " (" << spec.text
          << "): " << tree.status().ToString();
    }
  }
}

TEST(QuerySetsTest, ClassesMatchDeclaredLanguage) {
  for (const auto* set : {&BookQueries(), &ProteinQueries()}) {
    for (const QuerySpec& spec : *set) {
      Result<xpath::QueryTree> tree = xpath::QueryTree::Parse(spec.text);
      ASSERT_TRUE(tree.ok());
      if (spec.language == "XP{/,//,*}") {
        EXPECT_TRUE(tree.value().is_linear()) << spec.name;
      } else {
        EXPECT_TRUE(tree.value().has_predicates()) << spec.name;
      }
    }
  }
}

TEST(QuerySetsTest, TenQueriesPerDataset) {
  EXPECT_EQ(BookQueries().size(), 10u);
  EXPECT_EQ(ProteinQueries().size(), 10u);
  EXPECT_GE(AuctionQueries().size(), 8u);
}

}  // namespace
}  // namespace twigm::data
