# Empty compiler generated dependencies file for twigm_bench_util.
# This may be replaced when dependencies are built.
