file(REMOVE_RECURSE
  "CMakeFiles/twigm_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/twigm_bench_util.dir/bench_util.cc.o.d"
  "libtwigm_bench_util.a"
  "libtwigm_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twigm_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
