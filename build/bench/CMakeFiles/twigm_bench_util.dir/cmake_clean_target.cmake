file(REMOVE_RECURSE
  "libtwigm_bench_util.a"
)
