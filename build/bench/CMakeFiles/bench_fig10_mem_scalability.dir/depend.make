# Empty dependencies file for bench_fig10_mem_scalability.
# This may be replaced when dependencies are built.
