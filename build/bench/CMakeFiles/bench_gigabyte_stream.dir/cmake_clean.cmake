file(REMOVE_RECURSE
  "CMakeFiles/bench_gigabyte_stream.dir/bench_gigabyte_stream.cc.o"
  "CMakeFiles/bench_gigabyte_stream.dir/bench_gigabyte_stream.cc.o.d"
  "bench_gigabyte_stream"
  "bench_gigabyte_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gigabyte_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
