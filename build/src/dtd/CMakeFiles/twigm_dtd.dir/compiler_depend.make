# Empty compiler generated dependencies file for twigm_dtd.
# This may be replaced when dependencies are built.
