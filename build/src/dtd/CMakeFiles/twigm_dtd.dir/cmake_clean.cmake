file(REMOVE_RECURSE
  "CMakeFiles/twigm_dtd.dir/dtd_generator.cc.o"
  "CMakeFiles/twigm_dtd.dir/dtd_generator.cc.o.d"
  "CMakeFiles/twigm_dtd.dir/dtd_parser.cc.o"
  "CMakeFiles/twigm_dtd.dir/dtd_parser.cc.o.d"
  "libtwigm_dtd.a"
  "libtwigm_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twigm_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
