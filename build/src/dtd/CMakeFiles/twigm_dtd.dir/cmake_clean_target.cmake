file(REMOVE_RECURSE
  "libtwigm_dtd.a"
)
