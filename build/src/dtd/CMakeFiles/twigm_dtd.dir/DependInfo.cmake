
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtd/dtd_generator.cc" "src/dtd/CMakeFiles/twigm_dtd.dir/dtd_generator.cc.o" "gcc" "src/dtd/CMakeFiles/twigm_dtd.dir/dtd_generator.cc.o.d"
  "/root/repo/src/dtd/dtd_parser.cc" "src/dtd/CMakeFiles/twigm_dtd.dir/dtd_parser.cc.o" "gcc" "src/dtd/CMakeFiles/twigm_dtd.dir/dtd_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/twigm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/twigm_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
