# Empty dependencies file for twigm_baselines.
# This may be replaced when dependencies are built.
