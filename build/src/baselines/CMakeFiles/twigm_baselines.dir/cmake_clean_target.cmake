file(REMOVE_RECURSE
  "libtwigm_baselines.a"
)
