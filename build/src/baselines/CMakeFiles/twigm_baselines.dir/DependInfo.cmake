
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dom_eval.cc" "src/baselines/CMakeFiles/twigm_baselines.dir/dom_eval.cc.o" "gcc" "src/baselines/CMakeFiles/twigm_baselines.dir/dom_eval.cc.o.d"
  "/root/repo/src/baselines/eos_engine.cc" "src/baselines/CMakeFiles/twigm_baselines.dir/eos_engine.cc.o" "gcc" "src/baselines/CMakeFiles/twigm_baselines.dir/eos_engine.cc.o.d"
  "/root/repo/src/baselines/lazy_dfa.cc" "src/baselines/CMakeFiles/twigm_baselines.dir/lazy_dfa.cc.o" "gcc" "src/baselines/CMakeFiles/twigm_baselines.dir/lazy_dfa.cc.o.d"
  "/root/repo/src/baselines/naive_enum.cc" "src/baselines/CMakeFiles/twigm_baselines.dir/naive_enum.cc.o" "gcc" "src/baselines/CMakeFiles/twigm_baselines.dir/naive_enum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/twigm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/twigm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/twigm_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/twigm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
