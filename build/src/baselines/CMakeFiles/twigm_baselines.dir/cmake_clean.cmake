file(REMOVE_RECURSE
  "CMakeFiles/twigm_baselines.dir/dom_eval.cc.o"
  "CMakeFiles/twigm_baselines.dir/dom_eval.cc.o.d"
  "CMakeFiles/twigm_baselines.dir/eos_engine.cc.o"
  "CMakeFiles/twigm_baselines.dir/eos_engine.cc.o.d"
  "CMakeFiles/twigm_baselines.dir/lazy_dfa.cc.o"
  "CMakeFiles/twigm_baselines.dir/lazy_dfa.cc.o.d"
  "CMakeFiles/twigm_baselines.dir/naive_enum.cc.o"
  "CMakeFiles/twigm_baselines.dir/naive_enum.cc.o.d"
  "libtwigm_baselines.a"
  "libtwigm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twigm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
