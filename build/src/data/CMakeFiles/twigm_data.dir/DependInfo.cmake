
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/adversarial.cc" "src/data/CMakeFiles/twigm_data.dir/adversarial.cc.o" "gcc" "src/data/CMakeFiles/twigm_data.dir/adversarial.cc.o.d"
  "/root/repo/src/data/book.cc" "src/data/CMakeFiles/twigm_data.dir/book.cc.o" "gcc" "src/data/CMakeFiles/twigm_data.dir/book.cc.o.d"
  "/root/repo/src/data/datasets.cc" "src/data/CMakeFiles/twigm_data.dir/datasets.cc.o" "gcc" "src/data/CMakeFiles/twigm_data.dir/datasets.cc.o.d"
  "/root/repo/src/data/protein.cc" "src/data/CMakeFiles/twigm_data.dir/protein.cc.o" "gcc" "src/data/CMakeFiles/twigm_data.dir/protein.cc.o.d"
  "/root/repo/src/data/xmark.cc" "src/data/CMakeFiles/twigm_data.dir/xmark.cc.o" "gcc" "src/data/CMakeFiles/twigm_data.dir/xmark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/twigm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/twigm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/dtd/CMakeFiles/twigm_dtd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
