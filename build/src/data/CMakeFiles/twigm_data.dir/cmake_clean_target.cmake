file(REMOVE_RECURSE
  "libtwigm_data.a"
)
