# Empty dependencies file for twigm_data.
# This may be replaced when dependencies are built.
