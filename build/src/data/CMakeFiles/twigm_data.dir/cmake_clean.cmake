file(REMOVE_RECURSE
  "CMakeFiles/twigm_data.dir/adversarial.cc.o"
  "CMakeFiles/twigm_data.dir/adversarial.cc.o.d"
  "CMakeFiles/twigm_data.dir/book.cc.o"
  "CMakeFiles/twigm_data.dir/book.cc.o.d"
  "CMakeFiles/twigm_data.dir/datasets.cc.o"
  "CMakeFiles/twigm_data.dir/datasets.cc.o.d"
  "CMakeFiles/twigm_data.dir/protein.cc.o"
  "CMakeFiles/twigm_data.dir/protein.cc.o.d"
  "CMakeFiles/twigm_data.dir/xmark.cc.o"
  "CMakeFiles/twigm_data.dir/xmark.cc.o.d"
  "libtwigm_data.a"
  "libtwigm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twigm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
