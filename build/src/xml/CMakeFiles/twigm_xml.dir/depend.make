# Empty dependencies file for twigm_xml.
# This may be replaced when dependencies are built.
