file(REMOVE_RECURSE
  "CMakeFiles/twigm_xml.dir/dom.cc.o"
  "CMakeFiles/twigm_xml.dir/dom.cc.o.d"
  "CMakeFiles/twigm_xml.dir/sax_parser.cc.o"
  "CMakeFiles/twigm_xml.dir/sax_parser.cc.o.d"
  "CMakeFiles/twigm_xml.dir/xml_writer.cc.o"
  "CMakeFiles/twigm_xml.dir/xml_writer.cc.o.d"
  "libtwigm_xml.a"
  "libtwigm_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twigm_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
