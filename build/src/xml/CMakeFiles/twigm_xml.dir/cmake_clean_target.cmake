file(REMOVE_RECURSE
  "libtwigm_xml.a"
)
