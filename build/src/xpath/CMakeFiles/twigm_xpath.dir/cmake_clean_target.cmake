file(REMOVE_RECURSE
  "libtwigm_xpath.a"
)
