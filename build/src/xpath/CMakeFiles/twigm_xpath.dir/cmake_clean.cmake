file(REMOVE_RECURSE
  "CMakeFiles/twigm_xpath.dir/lexer.cc.o"
  "CMakeFiles/twigm_xpath.dir/lexer.cc.o.d"
  "CMakeFiles/twigm_xpath.dir/parser.cc.o"
  "CMakeFiles/twigm_xpath.dir/parser.cc.o.d"
  "CMakeFiles/twigm_xpath.dir/query_tree.cc.o"
  "CMakeFiles/twigm_xpath.dir/query_tree.cc.o.d"
  "libtwigm_xpath.a"
  "libtwigm_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twigm_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
