# Empty compiler generated dependencies file for twigm_xpath.
# This may be replaced when dependencies are built.
