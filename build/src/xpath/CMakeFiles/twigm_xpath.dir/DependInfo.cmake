
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpath/lexer.cc" "src/xpath/CMakeFiles/twigm_xpath.dir/lexer.cc.o" "gcc" "src/xpath/CMakeFiles/twigm_xpath.dir/lexer.cc.o.d"
  "/root/repo/src/xpath/parser.cc" "src/xpath/CMakeFiles/twigm_xpath.dir/parser.cc.o" "gcc" "src/xpath/CMakeFiles/twigm_xpath.dir/parser.cc.o.d"
  "/root/repo/src/xpath/query_tree.cc" "src/xpath/CMakeFiles/twigm_xpath.dir/query_tree.cc.o" "gcc" "src/xpath/CMakeFiles/twigm_xpath.dir/query_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/twigm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
