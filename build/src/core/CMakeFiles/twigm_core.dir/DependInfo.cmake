
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/branch_machine.cc" "src/core/CMakeFiles/twigm_core.dir/branch_machine.cc.o" "gcc" "src/core/CMakeFiles/twigm_core.dir/branch_machine.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/twigm_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/twigm_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/fragment.cc" "src/core/CMakeFiles/twigm_core.dir/fragment.cc.o" "gcc" "src/core/CMakeFiles/twigm_core.dir/fragment.cc.o.d"
  "/root/repo/src/core/machine_builder.cc" "src/core/CMakeFiles/twigm_core.dir/machine_builder.cc.o" "gcc" "src/core/CMakeFiles/twigm_core.dir/machine_builder.cc.o.d"
  "/root/repo/src/core/multi_query.cc" "src/core/CMakeFiles/twigm_core.dir/multi_query.cc.o" "gcc" "src/core/CMakeFiles/twigm_core.dir/multi_query.cc.o.d"
  "/root/repo/src/core/path_machine.cc" "src/core/CMakeFiles/twigm_core.dir/path_machine.cc.o" "gcc" "src/core/CMakeFiles/twigm_core.dir/path_machine.cc.o.d"
  "/root/repo/src/core/twig_machine.cc" "src/core/CMakeFiles/twigm_core.dir/twig_machine.cc.o" "gcc" "src/core/CMakeFiles/twigm_core.dir/twig_machine.cc.o.d"
  "/root/repo/src/core/union_query.cc" "src/core/CMakeFiles/twigm_core.dir/union_query.cc.o" "gcc" "src/core/CMakeFiles/twigm_core.dir/union_query.cc.o.d"
  "/root/repo/src/core/value_test.cc" "src/core/CMakeFiles/twigm_core.dir/value_test.cc.o" "gcc" "src/core/CMakeFiles/twigm_core.dir/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/twigm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/twigm_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/twigm_xpath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
