file(REMOVE_RECURSE
  "libtwigm_core.a"
)
