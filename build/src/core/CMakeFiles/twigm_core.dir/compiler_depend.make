# Empty compiler generated dependencies file for twigm_core.
# This may be replaced when dependencies are built.
