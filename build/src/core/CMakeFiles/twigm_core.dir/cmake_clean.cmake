file(REMOVE_RECURSE
  "CMakeFiles/twigm_core.dir/branch_machine.cc.o"
  "CMakeFiles/twigm_core.dir/branch_machine.cc.o.d"
  "CMakeFiles/twigm_core.dir/evaluator.cc.o"
  "CMakeFiles/twigm_core.dir/evaluator.cc.o.d"
  "CMakeFiles/twigm_core.dir/fragment.cc.o"
  "CMakeFiles/twigm_core.dir/fragment.cc.o.d"
  "CMakeFiles/twigm_core.dir/machine_builder.cc.o"
  "CMakeFiles/twigm_core.dir/machine_builder.cc.o.d"
  "CMakeFiles/twigm_core.dir/multi_query.cc.o"
  "CMakeFiles/twigm_core.dir/multi_query.cc.o.d"
  "CMakeFiles/twigm_core.dir/path_machine.cc.o"
  "CMakeFiles/twigm_core.dir/path_machine.cc.o.d"
  "CMakeFiles/twigm_core.dir/twig_machine.cc.o"
  "CMakeFiles/twigm_core.dir/twig_machine.cc.o.d"
  "CMakeFiles/twigm_core.dir/union_query.cc.o"
  "CMakeFiles/twigm_core.dir/union_query.cc.o.d"
  "CMakeFiles/twigm_core.dir/value_test.cc.o"
  "CMakeFiles/twigm_core.dir/value_test.cc.o.d"
  "libtwigm_core.a"
  "libtwigm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twigm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
