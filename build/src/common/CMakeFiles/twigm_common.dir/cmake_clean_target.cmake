file(REMOVE_RECURSE
  "libtwigm_common.a"
)
