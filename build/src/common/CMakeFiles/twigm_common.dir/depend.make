# Empty dependencies file for twigm_common.
# This may be replaced when dependencies are built.
