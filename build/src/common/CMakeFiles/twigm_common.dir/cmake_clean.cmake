file(REMOVE_RECURSE
  "CMakeFiles/twigm_common.dir/mem_stats.cc.o"
  "CMakeFiles/twigm_common.dir/mem_stats.cc.o.d"
  "CMakeFiles/twigm_common.dir/status.cc.o"
  "CMakeFiles/twigm_common.dir/status.cc.o.d"
  "CMakeFiles/twigm_common.dir/string_util.cc.o"
  "CMakeFiles/twigm_common.dir/string_util.cc.o.d"
  "libtwigm_common.a"
  "libtwigm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twigm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
