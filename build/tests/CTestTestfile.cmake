# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sax_parser_test[1]_include.cmake")
include("/root/repo/build/tests/xml_dom_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_parser_test[1]_include.cmake")
include("/root/repo/build/tests/query_tree_test[1]_include.cmake")
include("/root/repo/build/tests/twig_machine_test[1]_include.cmake")
include("/root/repo/build/tests/path_branch_machine_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/dtd_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/fragment_test[1]_include.cmake")
include("/root/repo/build/tests/multi_query_test[1]_include.cmake")
include("/root/repo/build/tests/param_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/eos_engine_test[1]_include.cmake")
include("/root/repo/build/tests/union_query_test[1]_include.cmake")
include("/root/repo/build/tests/fragment_property_test[1]_include.cmake")
