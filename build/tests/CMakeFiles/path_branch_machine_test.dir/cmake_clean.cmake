file(REMOVE_RECURSE
  "CMakeFiles/path_branch_machine_test.dir/path_branch_machine_test.cc.o"
  "CMakeFiles/path_branch_machine_test.dir/path_branch_machine_test.cc.o.d"
  "path_branch_machine_test"
  "path_branch_machine_test.pdb"
  "path_branch_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_branch_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
