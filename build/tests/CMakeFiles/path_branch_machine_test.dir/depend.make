# Empty dependencies file for path_branch_machine_test.
# This may be replaced when dependencies are built.
