file(REMOVE_RECURSE
  "CMakeFiles/union_query_test.dir/union_query_test.cc.o"
  "CMakeFiles/union_query_test.dir/union_query_test.cc.o.d"
  "union_query_test"
  "union_query_test.pdb"
  "union_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
