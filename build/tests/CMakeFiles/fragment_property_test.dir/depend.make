# Empty dependencies file for fragment_property_test.
# This may be replaced when dependencies are built.
