file(REMOVE_RECURSE
  "CMakeFiles/fragment_property_test.dir/fragment_property_test.cc.o"
  "CMakeFiles/fragment_property_test.dir/fragment_property_test.cc.o.d"
  "fragment_property_test"
  "fragment_property_test.pdb"
  "fragment_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragment_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
