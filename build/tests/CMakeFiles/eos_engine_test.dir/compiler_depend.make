# Empty compiler generated dependencies file for eos_engine_test.
# This may be replaced when dependencies are built.
