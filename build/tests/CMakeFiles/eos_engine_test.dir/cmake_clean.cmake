file(REMOVE_RECURSE
  "CMakeFiles/eos_engine_test.dir/eos_engine_test.cc.o"
  "CMakeFiles/eos_engine_test.dir/eos_engine_test.cc.o.d"
  "eos_engine_test"
  "eos_engine_test.pdb"
  "eos_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eos_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
