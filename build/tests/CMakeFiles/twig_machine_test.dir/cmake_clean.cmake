file(REMOVE_RECURSE
  "CMakeFiles/twig_machine_test.dir/twig_machine_test.cc.o"
  "CMakeFiles/twig_machine_test.dir/twig_machine_test.cc.o.d"
  "twig_machine_test"
  "twig_machine_test.pdb"
  "twig_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
