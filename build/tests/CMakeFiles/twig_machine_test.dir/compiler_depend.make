# Empty compiler generated dependencies file for twig_machine_test.
# This may be replaced when dependencies are built.
