# Empty compiler generated dependencies file for query_tree_test.
# This may be replaced when dependencies are built.
