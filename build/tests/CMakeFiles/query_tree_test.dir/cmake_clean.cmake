file(REMOVE_RECURSE
  "CMakeFiles/query_tree_test.dir/query_tree_test.cc.o"
  "CMakeFiles/query_tree_test.dir/query_tree_test.cc.o.d"
  "query_tree_test"
  "query_tree_test.pdb"
  "query_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
