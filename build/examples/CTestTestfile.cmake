# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stock_ticker "/root/repo/build/examples/stock_ticker")
set_tests_properties(example_stock_ticker PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_book_sections "/root/repo/build/examples/book_sections")
set_tests_properties(example_book_sections PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_feed_router "/root/repo/build/examples/feed_router")
set_tests_properties(example_feed_router PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explain "/root/repo/build/examples/explain" "//a[d]//b[e]//c | //x")
set_tests_properties(example_explain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
