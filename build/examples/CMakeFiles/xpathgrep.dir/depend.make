# Empty dependencies file for xpathgrep.
# This may be replaced when dependencies are built.
