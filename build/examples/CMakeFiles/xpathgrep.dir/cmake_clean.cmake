file(REMOVE_RECURSE
  "CMakeFiles/xpathgrep.dir/xpathgrep.cpp.o"
  "CMakeFiles/xpathgrep.dir/xpathgrep.cpp.o.d"
  "xpathgrep"
  "xpathgrep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpathgrep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
