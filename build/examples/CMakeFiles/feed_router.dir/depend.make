# Empty dependencies file for feed_router.
# This may be replaced when dependencies are built.
