file(REMOVE_RECURSE
  "CMakeFiles/feed_router.dir/feed_router.cpp.o"
  "CMakeFiles/feed_router.dir/feed_router.cpp.o.d"
  "feed_router"
  "feed_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
