# Empty dependencies file for book_sections.
# This may be replaced when dependencies are built.
