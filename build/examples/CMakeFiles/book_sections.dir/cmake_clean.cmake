file(REMOVE_RECURSE
  "CMakeFiles/book_sections.dir/book_sections.cpp.o"
  "CMakeFiles/book_sections.dir/book_sections.cpp.o.d"
  "book_sections"
  "book_sections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/book_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
